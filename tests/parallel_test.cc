// util/parallel.h: the thread pool and its determinism contract.
//
// The property all consumers rely on: ParallelFor / ParallelOrderedReduce
// over ANY (grain, thread count) — including adversarial grains (0-length
// ranges, grain 0, grain > n, single elements) — produce results identical
// to the serial loop, bit for bit. This suite also runs under TSan in CI
// (the pool is the substrate of every parallel pass in the tree).

#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <vector>

namespace disc {
namespace {

TEST(DefaultThreadsTest, AtLeastOne) { EXPECT_GE(DefaultThreads(), 1u); }

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  for (size_t threads : {1u, 2u, 4u, 7u}) {
    for (size_t count : {0u, 1u, 3u, 8u, 100u}) {
      ThreadPool pool(threads);
      EXPECT_EQ(pool.threads(), threads);
      std::vector<std::atomic<int>> hits(count);
      pool.Run(count, [&](size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      });
      for (size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads
                                     << " threads, count " << count;
      }
    }
  }
}

TEST(ThreadPoolTest, ReusableAcrossRuns) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> sum{0};
    pool.Run(50, [&](size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 50u * 49u / 2);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.threads(), 1u);
  size_t calls = 0;
  pool.Run(5, [&](size_t) { ++calls; });  // serial: unsynchronized is fine
  EXPECT_EQ(calls, 5u);
}

// ---------------------------------------------------------------------------
// Chunk decomposition: a pure function of (begin, end, grain).
// ---------------------------------------------------------------------------

TEST(ChunkTest, EmptyRangeHasNoChunks) {
  EXPECT_EQ(NumChunks(5, 5, 4), 0u);
  EXPECT_EQ(NumChunks(7, 3, 4), 0u);  // inverted == empty
}

TEST(ChunkTest, GrainZeroBehavesAsOne) {
  EXPECT_EQ(NumChunks(0, 5, 0), 5u);
  ChunkRange range = Chunk(0, 5, 0, 3);
  EXPECT_EQ(range.begin, 3u);
  EXPECT_EQ(range.end, 4u);
}

TEST(ChunkTest, GrainLargerThanRangeIsOneChunk) {
  EXPECT_EQ(NumChunks(2, 9, 100), 1u);
  ChunkRange range = Chunk(2, 9, 100, 0);
  EXPECT_EQ(range.begin, 2u);
  EXPECT_EQ(range.end, 9u);
}

TEST(ChunkTest, ChunksTileTheRangeExactly) {
  for (size_t begin : {0u, 3u}) {
    for (size_t end : {begin, begin + 1, begin + 7, begin + 64}) {
      for (size_t grain : {0u, 1u, 2u, 3u, 7u, 64u, 1000u}) {
        const size_t chunks = NumChunks(begin, end, grain);
        size_t expect_next = begin;
        for (size_t c = 0; c < chunks; ++c) {
          ChunkRange range = Chunk(begin, end, grain, c);
          EXPECT_EQ(range.begin, expect_next);
          EXPECT_GT(range.end, range.begin);  // no empty chunks
          expect_next = range.end;
        }
        EXPECT_EQ(expect_next, end);
      }
    }
  }
}

TEST(ChunkTest, RecommendedGrainBounded) {
  EXPECT_GE(RecommendedGrain(0, 4), 1u);
  EXPECT_LE(RecommendedGrain(1u << 30, 1), 1024u);
  EXPECT_GE(RecommendedGrain(10000, 4), 1u);
}

// ---------------------------------------------------------------------------
// The determinism property: parallel == serial for adversarial shapes.
// ---------------------------------------------------------------------------

// Serial reference: what any (pool, grain) execution must reproduce.
std::vector<size_t> SerialVisit(size_t begin, size_t end) {
  std::vector<size_t> visited;
  for (size_t i = begin; i < end; ++i) visited.push_back(i);
  return visited;
}

TEST(ParallelForTest, CoversRangeForAdversarialGrains) {
  const struct {
    size_t begin, end;
  } kRanges[] = {{0, 0}, {0, 1}, {0, 2}, {5, 5}, {0, 97}, {13, 140}};
  for (size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    for (const auto& range : kRanges) {
      for (size_t grain : {0u, 1u, 2u, 7u, 97u, 10000u}) {
        const size_t n = range.end - range.begin;
        std::vector<std::atomic<int>> hits(n);
        ParallelFor(&pool, range.begin, range.end, grain,
                    [&](size_t chunk_begin, size_t chunk_end) {
                      ASSERT_LE(chunk_begin, chunk_end);
                      for (size_t i = chunk_begin; i < chunk_end; ++i) {
                        hits[i - range.begin].fetch_add(
                            1, std::memory_order_relaxed);
                      }
                    });
        for (size_t i = 0; i < n; ++i) {
          ASSERT_EQ(hits[i].load(), 1)
              << "range [" << range.begin << "," << range.end << ") grain "
              << grain << " threads " << threads;
        }
      }
    }
  }
}

TEST(ParallelForTest, NullPoolRunsSerially) {
  std::vector<size_t> visited;
  ParallelFor(nullptr, 3, 11, 3, [&](size_t chunk_begin, size_t chunk_end) {
    for (size_t i = chunk_begin; i < chunk_end; ++i) visited.push_back(i);
  });
  EXPECT_EQ(visited, SerialVisit(3, 11));
}

TEST(ParallelOrderedReduceTest, AppendsInChunkOrderForAnyThreadCount) {
  // The consume order (ascending chunks) makes appends deterministic:
  // every (threads, grain) must yield the serial sequence.
  for (size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    for (size_t grain : {0u, 1u, 3u, 7u, 50u, 1000u}) {
      std::vector<size_t> visited;
      ParallelOrderedReduce<std::vector<size_t>>(
          &pool, 0, 200, grain,
          [](size_t chunk_begin, size_t chunk_end) {
            std::vector<size_t> local;
            for (size_t i = chunk_begin; i < chunk_end; ++i) {
              local.push_back(i);
            }
            return local;
          },
          [&](std::vector<size_t>& local) {
            visited.insert(visited.end(), local.begin(), local.end());
          });
      ASSERT_EQ(visited, SerialVisit(0, 200))
          << "threads " << threads << " grain " << grain;
    }
  }
}

TEST(ParallelOrderedReduceTest, FloatingPointSumBitIdenticalAcrossThreads) {
  // Floating-point addition is not associative, so a reduction that merged
  // in completion order would drift across thread counts. The ordered
  // reduction must produce bit-identical sums because the chunk
  // decomposition and the merge order depend only on (begin, end, grain).
  auto chunked_sum = [](ThreadPool* pool, size_t grain) {
    double sum = 0.0;
    ParallelOrderedReduce<double>(
        pool, 0, 5000, grain,
        [](size_t chunk_begin, size_t chunk_end) {
          double local = 0.0;
          for (size_t i = chunk_begin; i < chunk_end; ++i) {
            local += 1.0 / (1.0 + static_cast<double>(i));
          }
          return local;
        },
        [&](double& local) { sum += local; });
    return sum;
  };

  for (size_t grain : {1u, 7u, 64u, 333u}) {
    const double serial = chunked_sum(nullptr, grain);
    for (size_t threads : {2u, 4u, 8u}) {
      ThreadPool pool(threads);
      const double parallel = chunked_sum(&pool, grain);
      // Exact bit equality, not EXPECT_DOUBLE_EQ: that is the contract.
      ASSERT_EQ(serial, parallel)
          << "grain " << grain << " threads " << threads;
    }
  }
}

}  // namespace
}  // namespace disc
