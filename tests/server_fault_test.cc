// Fault-injection tests for the event-loop transport: hostile or unlucky
// clients must never wedge the daemon or leak engine leases.
//
// Scenarios (ISSUE 6): a slow-loris client dribbling bytes, a client that
// disconnects mid-request, a client that never reads its responses, an
// overload burst answered with BUSY instead of an unbounded backlog, and a
// shutdown that still delivers the in-flight response. ISSUE 7 adds the
// HTTP-transport legs: a slow loris trickling header bytes and a client
// that vanishes mid-body (Content-Length promised, a fraction delivered).
// After every scenario the session manager's lease counters must balance —
// a crashed or dropped connection may not strand an engine outside the
// pool.

#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <latch>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "server/net.h"
#include "server/server.h"

namespace disc {
namespace {

std::unique_ptr<DiscServer> StartFaultServer(ServerOptions options) {
  options.host = "127.0.0.1";
  options.port = 0;  // ephemeral; parallel ctest runs must not collide
  auto server = DiscServer::Start(std::move(options));
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).value();
}

LineClient ConnectTo(const DiscServer& server) {
  auto client = LineClient::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

std::string MustRoundtrip(LineClient& client, const std::string& line) {
  auto response = client.Roundtrip(line);
  EXPECT_TRUE(response.ok()) << line << ": "
                             << response.status().ToString();
  return response.ok() ? *response : "";
}

bool PollUntil(const std::function<bool()>& done,
               std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return done();
}

/// Every lease handed out has been returned to the manager: no connection
/// teardown path stranded an engine.
void ExpectNoLeakedLeases(const DiscServer& server) {
  EXPECT_TRUE(PollUntil(
      [&] {
        SessionManagerStats stats = server.manager_stats();
        return stats.leases_released == stats.leases_acquired;
      },
      std::chrono::seconds(10)))
      << "leases_acquired=" << server.manager_stats().leases_acquired
      << " leases_released=" << server.manager_stats().leases_released;
}

void SendAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t wrote = ::send(fd, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(wrote, 0) << "send failed: errno=" << errno;
    sent += static_cast<size_t>(wrote);
  }
}

// ---------------------------------------------------------------------------
// Slow and hostile readers/writers
// ---------------------------------------------------------------------------

TEST(ServerFaultTest, SlowLorisClientDoesNotStallOtherSessions) {
  auto server = StartFaultServer(ServerOptions{});

  // The loris dribbles one OPEN command a few bytes at a time, never
  // giving the loop a complete line.
  auto loris_fd = ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(loris_fd.ok()) << loris_fd.status().ToString();
  const std::string command = "OPEN dataset=clustered n=300 dim=2 seed=9\n";
  const size_t half = command.size() / 2;
  SendAll(*loris_fd, command.substr(0, 4));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  SendAll(*loris_fd, command.substr(4, half - 4));

  // While the loris holds its half-written line, a well-behaved client
  // gets full service on the same loop thread.
  {
    LineClient client = ConnectTo(*server);
    EXPECT_NE(MustRoundtrip(client,
                            "OPEN dataset=clustered n=300 dim=2 seed=9")
                  .find("\"ok\":true"),
              std::string::npos);
    EXPECT_NE(MustRoundtrip(client, "DIVERSIFY r=0.08")
                  .find("\"ok\":true"),
              std::string::npos);
    MustRoundtrip(client, "CLOSE");
  }

  // The loris eventually finishes its line and is served normally: slow
  // is not an error, just slow.
  SendAll(*loris_fd, command.substr(half));
  LineChannel loris(*loris_fd);
  auto open = loris.ReadLine();
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_NE(open->find("\"ok\":true"), std::string::npos) << *open;
  SendAll(*loris_fd, "CLOSE\n");
  auto close = loris.ReadLine();
  ASSERT_TRUE(close.ok()) << close.status().ToString();
  EXPECT_NE(close->find("\"ok\":true"), std::string::npos) << *close;
  int fd = *loris_fd;
  CloseSocket(&fd);

  ExpectNoLeakedLeases(*server);
}

TEST(ServerFaultTest, MidRequestDisconnectReleasesTheLease) {
  auto server = StartFaultServer(ServerOptions{});
  {
    LineClient client = ConnectTo(*server);
    ASSERT_NE(MustRoundtrip(client,
                            "OPEN dataset=clustered n=800 dim=2 seed=13")
                  .find("\"ok\":true"),
              std::string::npos);
    // Fire a computation and vanish before the response can be written.
    ASSERT_TRUE(client.SendLine("DIVERSIFY r=0.05").ok());
  }  // ~LineClient closes the socket mid-request

  // The worker still finishes the computation; the dead connection is then
  // destroyed and its engine returns to the pool.
  ExpectNoLeakedLeases(*server);

  // The daemon is unharmed: a fresh session works end to end.
  LineClient after = ConnectTo(*server);
  EXPECT_NE(MustRoundtrip(after,
                          "OPEN dataset=clustered n=800 dim=2 seed=13")
                .find("\"ok\":true"),
            std::string::npos);
  EXPECT_NE(MustRoundtrip(after, "DIVERSIFY r=0.05").find("\"ok\":true"),
            std::string::npos);
  MustRoundtrip(after, "CLOSE");
  ExpectNoLeakedLeases(*server);
}

TEST(ServerFaultTest, ClientThatNeverReadsIsTornDownAtTheWriteCap) {
  auto server = StartFaultServer(ServerOptions{});

  auto fd_or = ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(fd_or.ok()) << fd_or.status().ToString();
  int fd = *fd_or;
  // Shrink this side's receive buffer so the kernel absorbs as little of
  // the response flood as possible (the cap triggers sooner).
  int rcvbuf = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));

  LineChannel channel(fd);
  ASSERT_TRUE(
      channel.WriteLine("OPEN dataset=uniform n=3000 dim=2 seed=7").ok());
  auto open = channel.ReadLine();
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  ASSERT_NE(open->find("\"ok\":true"), std::string::npos) << *open;

  // A tiny radius makes nearly every object independent, so each response
  // carries ~n solution ids (~15 KB). Pipelining ~1500 of them without
  // ever reading pushes the unflushed output past kMaxOutBytes by a wide
  // margin, whatever the kernel buffers absorb.
  std::string flood;
  for (int i = 0; i < 1500; ++i) flood += "DIVERSIFY r=0.001\n";
  SendAll(fd, flood);

  // The server answers from the engine cache until the write cap trips,
  // then tears the connection down and reclaims the lease — it never
  // buffers without bound for a client that will not read.
  ExpectNoLeakedLeases(*server);
  EXPECT_TRUE(PollUntil(
      [&] { return server->server_stats().active_connections == 0; },
      std::chrono::seconds(10)));
  CloseSocket(&fd);

  // Service is unaffected afterwards.
  LineClient after = ConnectTo(*server);
  EXPECT_NE(MustRoundtrip(after,
                          "OPEN dataset=clustered n=300 dim=2 seed=9")
                .find("\"ok\":true"),
            std::string::npos);
  MustRoundtrip(after, "CLOSE");
  ExpectNoLeakedLeases(*server);
}

TEST(ServerFaultTest, GarbageBytesGetAnErrorLineNotACrash) {
  auto server = StartFaultServer(ServerOptions{});
  auto fd_or = ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(fd_or.ok()) << fd_or.status().ToString();
  int fd = *fd_or;

  // Binary junk with embedded NULs and invalid UTF-8, newline-terminated
  // so it parses as one "line" (explicit length: the literal contains
  // NULs, so a plain const char* constructor would truncate it).
  static const char kJunk[] = "\x01\x00\xff\xfe DIVERSIFY\x00 r=\xc3\x28\n";
  SendAll(fd, std::string(kJunk, sizeof(kJunk) - 1));
  LineChannel channel(fd);
  auto response = channel.ReadLine();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response->find("\"ok\":false"), std::string::npos) << *response;

  // The connection (and the daemon) survive to run a real session.
  ASSERT_TRUE(
      channel.WriteLine("OPEN dataset=clustered n=300 dim=2 seed=9").ok());
  auto open = channel.ReadLine();
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_NE(open->find("\"ok\":true"), std::string::npos) << *open;
  ASSERT_TRUE(channel.WriteLine("CLOSE").ok());
  auto close = channel.ReadLine();
  ASSERT_TRUE(close.ok());
  CloseSocket(&fd);
  ExpectNoLeakedLeases(*server);
}

// ---------------------------------------------------------------------------
// HTTP transport faults (the same loop, different framing)
// ---------------------------------------------------------------------------

/// Blocking reads until `needle` shows up in the accumulated bytes (or the
/// peer closes / errors); returns everything read.
std::string RecvUntil(int fd, const std::string& needle) {
  std::string got;
  char chunk[4096];
  while (got.find(needle) == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    got.append(chunk, static_cast<size_t>(n));
  }
  return got;
}

TEST(ServerFaultTest, HttpSlowLorisDoesNotStallOtherSessions) {
  auto server = StartFaultServer(ServerOptions{});

  // The loris trickles an HTTP POST — method, then header bytes — never
  // completing the request.
  auto loris_fd = ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(loris_fd.ok()) << loris_fd.status().ToString();
  const std::string body = "dataset=clustered n=300 dim=2 seed=9";
  const std::string request =
      "POST /open HTTP/1.1\r\nHost: disc\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body;
  const size_t half = request.size() / 2;
  SendAll(*loris_fd, request.substr(0, 6));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  SendAll(*loris_fd, request.substr(6, half - 6));

  // Meanwhile a well-behaved HTTP client gets full service on the same
  // loop thread.
  {
    auto client = HttpClient::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto open =
        client->Post("/open", "dataset=clustered n=300 dim=2 seed=9");
    ASSERT_TRUE(open.ok()) << open.status().ToString();
    EXPECT_EQ(open->status, 200) << open->body;
    auto wire = client->Post("/diversify", "r=0.08");
    ASSERT_TRUE(wire.ok());
    EXPECT_EQ(wire->status, 200) << wire->body;
    auto close = client->Post("/close", "");
    ASSERT_TRUE(close.ok());
  }

  // The loris eventually completes its request and is served normally.
  SendAll(*loris_fd, request.substr(half));
  std::string response = RecvUntil(*loris_fd, "\"ok\":true");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("\"cmd\":\"OPEN\""), std::string::npos)
      << response;
  int fd = *loris_fd;
  CloseSocket(&fd);

  ExpectNoLeakedLeases(*server);
}

TEST(ServerFaultTest, HttpMidBodyDisconnectReleasesTheLease) {
  auto server = StartFaultServer(ServerOptions{});
  {
    auto fd_or = ConnectTcp("127.0.0.1", server->port());
    ASSERT_TRUE(fd_or.ok()) << fd_or.status().ToString();
    int fd = *fd_or;
    const std::string body = "dataset=clustered n=800 dim=2 seed=13";
    SendAll(fd,
            "POST /open HTTP/1.1\r\nHost: disc\r\nContent-Length: " +
                std::to_string(body.size()) + "\r\n\r\n" + body);
    std::string open = RecvUntil(fd, "\"ok\":true");
    ASSERT_NE(open.find("200 OK"), std::string::npos) << open;

    // Promise a 100-byte body, deliver 10 bytes, vanish.
    SendAll(fd,
            "POST /diversify HTTP/1.1\r\nHost: disc\r\n"
            "Content-Length: 100\r\n\r\nr=0.05 tru");
    CloseSocket(&fd);
  }

  // The half-delivered request is never dispatched; the dead connection is
  // destroyed and its engine returns to the pool.
  ExpectNoLeakedLeases(*server);

  // The daemon is unharmed: a fresh HTTP session works end to end.
  auto after = HttpClient::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  auto open = after->Post("/open", "dataset=clustered n=800 dim=2 seed=13");
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_EQ(open->status, 200) << open->body;
  auto wire = after->Post("/diversify", "r=0.05");
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(wire->status, 200) << wire->body;
  auto close = after->Post("/close", "");
  ASSERT_TRUE(close.ok());
  ExpectNoLeakedLeases(*server);
}

TEST(ServerFaultTest, HttpGarbageGetsA400AndTheConnectionCloses) {
  auto server = StartFaultServer(ServerOptions{});
  auto fd_or = ConnectTcp("127.0.0.1", server->port());
  ASSERT_TRUE(fd_or.ok()) << fd_or.status().ToString();
  int fd = *fd_or;

  // An HTTP-looking prefix (so the connection detects as HTTP) followed by
  // a malformed request line: the framing error is unrecoverable, so the
  // server answers 400 and closes.
  SendAll(fd, "GET garbage\r\n\r\n");
  std::string response = RecvUntil(fd, "\r\n\r\n");
  EXPECT_NE(response.find("400 Bad Request"), std::string::npos) << response;
  EXPECT_NE(response.find("Connection: close"), std::string::npos)
      << response;
  // EOF follows (the server tore the connection down).
  std::string rest = RecvUntil(fd, "\xff never-matches");
  CloseSocket(&fd);

  ExpectNoLeakedLeases(*server);
}

// ---------------------------------------------------------------------------
// Overload and shutdown
// ---------------------------------------------------------------------------

TEST(ServerFaultTest, OverloadIsAnsweredWithBusyNotABacklog) {
  ServerOptions options;
  options.workers = 1;
  options.max_inflight = 1;
  options.max_pending = 0;  // one computation in the system, zero queued
  auto server = StartFaultServer(std::move(options));

  constexpr int kClients = 4;
  std::vector<LineClient> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(ConnectTo(*server));
    ASSERT_NE(MustRoundtrip(clients.back(),
                            "OPEN dataset=clustered n=1500 dim=2 seed=21")
                  .find("\"ok\":true"),
              std::string::npos);
  }

  // Bursts of concurrent DIVERSIFYs with distinct radii (so nothing
  // coalesces). With a budget of one job, each burst should admit one
  // computation and refuse the overlap with BUSY. Retry a few rounds to
  // be robust against a burst happening to serialize.
  std::atomic<int> ok_count{0};
  std::atomic<int> busy_count{0};
  for (int round = 0; round < 8 && busy_count.load() == 0; ++round) {
    std::latch start(kClients);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i, round] {
        char command[64];
        std::snprintf(command, sizeof(command), "DIVERSIFY r=%.4f",
                      0.03 + 0.002 * i + 0.0001 * round);
        start.arrive_and_wait();
        std::string response = MustRoundtrip(clients[i], command);
        if (response.find("\"ok\":true") != std::string::npos) {
          ok_count.fetch_add(1);
        } else if (response.find("\"code\":\"Busy\"") != std::string::npos) {
          busy_count.fetch_add(1);
        } else {
          ADD_FAILURE() << "neither ok nor busy: " << response;
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  EXPECT_GE(ok_count.load(), 1) << "no burst admitted any computation";
  EXPECT_GE(busy_count.load(), 1) << "no burst produced a BUSY rejection";
  EXPECT_GE(server->server_stats().busy_rejections, 1u);

  // BUSY is a per-request verdict, not a connection state: once the burst
  // drains, the same connections compute again.
  for (int i = 0; i < kClients; ++i) {
    char command[64];
    std::snprintf(command, sizeof(command), "DIVERSIFY r=%.4f",
                  0.05 + 0.002 * i);
    EXPECT_NE(MustRoundtrip(clients[i], command).find("\"ok\":true"),
              std::string::npos);
    MustRoundtrip(clients[i], "CLOSE");
  }
  clients.clear();
  ExpectNoLeakedLeases(*server);
}

TEST(ServerFaultTest, ExactOpenAboveTheCapIsRefusedWithoutTakingTheDaemon) {
  ServerOptions options;
  options.max_exact_points = 300;
  auto server = StartFaultServer(std::move(options));
  LineClient client = ConnectTo(*server);

  // The oversized exact OPEN is refused with an error line — never an
  // unbounded index build or an O(n^2) fallback.
  std::string refused = MustRoundtrip(
      client, "OPEN dataset=clustered n=400 dim=2 seed=9");
  EXPECT_NE(refused.find("\"ok\":false"), std::string::npos) << refused;
  EXPECT_NE(refused.find("\"code\":\"InvalidArgument\""), std::string::npos)
      << refused;
  EXPECT_NE(refused.find("lsh-sharded"), std::string::npos) << refused;

  // The daemon is alive and the connection usable: the sharded/LSH kinds
  // are exempt from the cap, so the same dataset opens in graph mode.
  std::string opened = MustRoundtrip(
      client,
      "OPEN dataset=clustered n=400 dim=2 seed=9 backend=lsh-sharded");
  EXPECT_NE(opened.find("\"ok\":true"), std::string::npos) << opened;
  EXPECT_NE(opened.find("\"backend\":\"lsh-sharded\""), std::string::npos)
      << opened;
  EXPECT_NE(MustRoundtrip(client, "DIVERSIFY r=0.08").find("\"ok\":true"),
            std::string::npos);
  MustRoundtrip(client, "CLOSE");

  // Under-cap exact OPENs are untouched by the guardrail.
  EXPECT_NE(MustRoundtrip(client,
                          "OPEN dataset=clustered n=200 dim=2 seed=9")
                .find("\"ok\":true"),
            std::string::npos);
  MustRoundtrip(client, "CLOSE");
  ExpectNoLeakedLeases(*server);
}

TEST(ServerFaultTest, ShutdownDrainsTheInFlightComputation) {
  auto server = StartFaultServer(ServerOptions{});
  LineClient client = ConnectTo(*server);
  ASSERT_NE(MustRoundtrip(client,
                          "OPEN dataset=clustered n=2000 dim=2 seed=33")
                .find("\"ok\":true"),
            std::string::npos);

  // Fire a computation, give the loop a moment to dispatch it, then shut
  // down while it is (very likely) still executing.
  ASSERT_TRUE(client.SendLine("DIVERSIFY r=0.03").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server->Shutdown();

  // Drain semantics: the in-flight job ran to completion and its response
  // was flushed before the connection closed.
  auto response = client.RecvLine();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response->find("\"ok\":true"), std::string::npos) << *response;
  EXPECT_NE(response->find("\"cmd\":\"DIVERSIFY\""), std::string::npos)
      << *response;
  // ...and nothing after it: the server is gone.
  EXPECT_FALSE(client.RecvLine().ok());

  SessionManagerStats stats = server->manager_stats();
  EXPECT_EQ(stats.leases_released, stats.leases_acquired);
}

}  // namespace
}  // namespace disc
