// core/speculation.h: speculative parallel candidate evaluation in the
// greedy selection loops, pinned by a determinism layer.
//
// The contract under test (the speculation extension of the util/parallel.h
// rules): every greedy-family algorithm produces byte-identical output —
// solution, AccessStats, tree color state, serialized wire line — at every
// thread count and every speculation width, including adversarial widths
// (0 = auto, 1 = the exact pre-speculation path, width > candidate count).
// The speculation counters themselves are deterministic for a fixed
// (workload, width) regardless of the thread count, and a pinned-counter
// test fails if speculation silently degenerates (stops committing or stops
// being exercised). A CountingMetric layer bounds the wasted work: total
// distance computations with speculation width k never exceed k times the
// serial run's, and are exactly equal at k = 1.

#include "core/speculation.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/disc_algorithms.h"
#include "data/generators.h"
#include "engine/config.h"
#include "engine/engine.h"
#include "metric/metric.h"
#include "mtree/mtree.h"
#include "server/protocol.h"
#include "util/parallel.h"

namespace disc {
namespace {

// ---------------------------------------------------------------------------
// Workloads and runners
// ---------------------------------------------------------------------------

struct Workload {
  const char* name;
  Dataset dataset;
  std::unique_ptr<DistanceMetric> metric;
  double radius;
};

Workload MakeWorkload(int index) {
  switch (index) {
    case 0:
      return {"uniform", MakeUniformDataset(600, 2, 11),
              MakeMetric(MetricKind::kEuclidean), 0.05};
    case 1:
      return {"clustered", MakeClusteredDataset(800, 2, 3),
              MakeMetric(MetricKind::kEuclidean), 0.05};
    default:
      return {"clustered_3d", MakeClusteredDataset(500, 3, 7),
              MakeMetric(MetricKind::kEuclidean), 0.12};
  }
}
constexpr int kNumWorkloads = 3;

const Algorithm kGreedyFamily[] = {
    Algorithm::kGreedy,    Algorithm::kGreedyWhite, Algorithm::kLazyGrey,
    Algorithm::kLazyWhite, Algorithm::kGreedyC,     Algorithm::kFastC,
};

// One full run on a fresh tree: build (through `pool`, which also exercises
// the parallel bulk load), then the algorithm with the given pool/width.
struct RunOutput {
  DiscResult result;
  MTree::ColorState state;
};

RunOutput RunOnFreshTree(const Workload& w, Algorithm algorithm,
                         ThreadPool* pool, size_t speculate) {
  MTree tree(w.dataset, *w.metric);
  EXPECT_TRUE(tree.Build(pool).ok());
  AlgorithmRunOptions options;
  options.pool = pool;
  options.speculate = speculate;
  RunOutput out;
  out.result = RunAlgorithm(&tree, algorithm, w.radius, options);
  out.state = tree.SaveColorState();
  return out;
}

void ExpectIdenticalRuns(const RunOutput& expected, const RunOutput& actual,
                         const std::string& label) {
  EXPECT_EQ(expected.result.solution, actual.result.solution) << label;
  EXPECT_TRUE(expected.result.stats == actual.result.stats)
      << label << ": node_accesses " << expected.result.stats.node_accesses
      << " vs " << actual.result.stats.node_accesses << ", distances "
      << expected.result.stats.distance_computations << " vs "
      << actual.result.stats.distance_computations;
  EXPECT_EQ(expected.state.colors, actual.state.colors) << label;
  EXPECT_EQ(expected.state.closest_black_dist, actual.state.closest_black_dist)
      << label;
}

// ---------------------------------------------------------------------------
// The determinism property: every greedy-family algorithm, every workload,
// byte-identical across thread counts (width resolves to the thread count,
// so this also sweeps widths 2/4/8 against the serial width-1 baseline).
// ---------------------------------------------------------------------------

class SpeculationDeterminismTest
    : public ::testing::TestWithParam<std::tuple<Algorithm, int>> {};

TEST_P(SpeculationDeterminismTest, ByteIdenticalAcrossThreadCounts) {
  auto [algorithm, workload_index] = GetParam();
  Workload w = MakeWorkload(workload_index);
  RunOutput serial = RunOnFreshTree(w, algorithm, nullptr, /*speculate=*/0);
  ASSERT_FALSE(serial.result.solution.empty());
  for (size_t threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    RunOutput parallel = RunOnFreshTree(w, algorithm, &pool, /*speculate=*/0);
    ExpectIdenticalRuns(serial, parallel,
                        std::string(AlgorithmToString(algorithm)) + "/" +
                            w.name + " threads=" + std::to_string(threads));
  }
}

INSTANTIATE_TEST_SUITE_P(
    GreedyFamilyAllWorkloads, SpeculationDeterminismTest,
    ::testing::Combine(::testing::ValuesIn(kGreedyFamily),
                       ::testing::Range(0, kNumWorkloads)),
    [](const ::testing::TestParamInfo<std::tuple<Algorithm, int>>& info) {
      std::string name = AlgorithmToString(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_w" + std::to_string(std::get<1>(info.param));
    });

// Adversarial widths: 0 (auto), 1 (machinery disabled), a mid width, the
// candidate count, and width far beyond the number of candidates. All must
// reproduce the serial run byte for byte.
TEST(SpeculationAdversarialWidthTest, AnyWidthMatchesSerial) {
  Workload w = MakeWorkload(1);
  const size_t n = w.dataset.size();
  for (Algorithm algorithm : {Algorithm::kGreedy, Algorithm::kFastC}) {
    RunOutput serial = RunOnFreshTree(w, algorithm, nullptr, /*speculate=*/1);
    for (size_t width : {size_t{0}, size_t{1}, size_t{3}, n, n + 17}) {
      // Width > 1 with a null pool evaluates the batch sequentially with
      // the same counters; with a pool, concurrently. Both must match.
      RunOutput sequential = RunOnFreshTree(w, algorithm, nullptr, width);
      ThreadPool pool(4);
      RunOutput parallel = RunOnFreshTree(w, algorithm, &pool, width);
      const std::string label = std::string(AlgorithmToString(algorithm)) +
                                " width=" + std::to_string(width);
      ExpectIdenticalRuns(serial, sequential, label + " (no pool)");
      ExpectIdenticalRuns(serial, parallel, label + " (pool)");
      // Width 0 is the auto setting and resolves per pool (1 without, the
      // thread count with), so only explicit widths pin the counters.
      if (width != 0) {
        EXPECT_TRUE(sequential.result.speculation ==
                    parallel.result.speculation)
            << label << ": counters must not depend on the thread count";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Counter determinism and the pinned invalidation rate
// ---------------------------------------------------------------------------

// The counters are a pure function of (workload, width): any thread count —
// including none — produces the same batches/evaluated/committed/discarded.
TEST(SpeculationCountersTest, IndependentOfThreadCount) {
  Workload w = MakeWorkload(0);
  for (Algorithm algorithm : kGreedyFamily) {
    RunOutput reference =
        RunOnFreshTree(w, algorithm, nullptr, /*speculate=*/4);
    for (size_t threads : {2u, 4u, 8u}) {
      ThreadPool pool(threads);
      RunOutput run = RunOnFreshTree(w, algorithm, &pool, /*speculate=*/4);
      EXPECT_TRUE(reference.result.speculation == run.result.speculation)
          << AlgorithmToString(algorithm) << " threads=" << threads;
    }
  }
}

// Structural invariants of the counters, against every workload:
//  * every evaluation is eventually committed or discarded;
//  * Greedy-DisC evaluates the batch with the top candidate assumed black,
//    so the first take after every prefetch commits: committed >= batches
//    (the liveness half of the contract — speculation can never be pure
//    overhead);
//  * width 1 never speculates at all.
TEST(SpeculationCountersTest, EvaluationsAreAccountedFor) {
  for (int i = 0; i < kNumWorkloads; ++i) {
    Workload w = MakeWorkload(i);
    for (Algorithm algorithm : kGreedyFamily) {
      RunOutput run = RunOnFreshTree(w, algorithm, nullptr, /*speculate=*/4);
      const SpeculationStats& s = run.result.speculation;
      EXPECT_EQ(s.evaluated, s.committed + s.discarded)
          << AlgorithmToString(algorithm) << "/" << w.name;
      EXPECT_GE(s.committed, s.batches)
          << AlgorithmToString(algorithm) << "/" << w.name;

      RunOutput serial = RunOnFreshTree(w, algorithm, nullptr, /*speculate=*/1);
      EXPECT_TRUE(serial.result.speculation == SpeculationStats{})
          << AlgorithmToString(algorithm) << "/" << w.name
          << ": width 1 must disable the machinery";
    }
  }
}

// The pinned invalidation rate: exact counter values for one fixed
// (workload, width). If speculation silently degenerates — a refactor that
// stops committing (discarded balloons), stops invalidating (the validity
// check went vacuous), or stops batching — these numbers move and the test
// fails. Update them only with an explanation of why the schedule changed.
TEST(SpeculationCountersTest, PinnedCountersOnFixedWorkload) {
  Workload w = MakeWorkload(1);  // clustered n=800 seed=3 r=0.05
  RunOutput run =
      RunOnFreshTree(w, Algorithm::kGreedy, nullptr, /*speculate=*/4);
  const SpeculationStats& s = run.result.speculation;
  EXPECT_EQ(s.batches, 26u);
  EXPECT_EQ(s.evaluated, 102u);
  EXPECT_EQ(s.committed, 36u);
  EXPECT_EQ(s.discarded, 66u);
  // The rate itself, spelled out: every batch commits its first take
  // (liveness), some batches carry further than that (speculation is not
  // degenerating into one guaranteed hit per round), and the workload
  // genuinely exercises invalidation.
  EXPECT_GT(s.committed, s.batches)
      << "speculation stopped carrying across steps";
  EXPECT_GT(s.discarded, 0u) << "this workload must exercise invalidation";
}

// ---------------------------------------------------------------------------
// Wasted-work bound, measured at the metric (every distance the index
// computes, speculative or not, flows through DistanceMetric::Distance).
// ---------------------------------------------------------------------------

class CountingMetric final : public DistanceMetric {
 public:
  explicit CountingMetric(const DistanceMetric& inner) : inner_(inner) {}

  double Distance(const Point& a, const Point& b) const override {
    calls_.fetch_add(1, std::memory_order_relaxed);
    return inner_.Distance(a, b);
  }
  MetricKind kind() const override { return inner_.kind(); }

  uint64_t calls() const { return calls_.load(); }
  void Reset() { calls_.store(0); }

 private:
  const DistanceMetric& inner_;
  mutable std::atomic<uint64_t> calls_{0};
};

// Speculation wastes at most one batch per serial fallback, so the total
// distance computations of a width-k run are bounded by k times the serial
// run's — and width 1 is exactly the serial run (no speculative machinery,
// no extra calls at all).
TEST(SpeculationWasteBoundTest, DistanceCallsBoundedByWidthTimesSerial) {
  Dataset dataset = MakeClusteredDataset(800, 2, 3);
  EuclideanMetric euclid;
  const double radius = 0.05;
  for (Algorithm algorithm : {Algorithm::kGreedy, Algorithm::kGreedyC}) {
    auto measure = [&](ThreadPool* pool, size_t speculate) -> uint64_t {
      CountingMetric metric(euclid);
      MTree tree(dataset, metric);
      EXPECT_TRUE(tree.Build(pool).ok());
      metric.Reset();  // construction costs are out of scope for the bound
      AlgorithmRunOptions options;
      options.pool = pool;
      options.speculate = speculate;
      RunAlgorithm(&tree, algorithm, radius, options);
      return metric.calls();
    };

    const uint64_t serial_calls = measure(nullptr, /*speculate=*/1);
    ASSERT_GT(serial_calls, 0u);

    const uint64_t width1_calls = measure(nullptr, /*speculate=*/0);
    EXPECT_EQ(width1_calls, serial_calls)
        << AlgorithmToString(algorithm)
        << ": width 1 must make exactly the serial run's distance calls";

    constexpr size_t kWidth = 4;
    ThreadPool pool(kWidth);
    const uint64_t spec_calls = measure(&pool, kWidth);
    EXPECT_LE(spec_calls, serial_calls * kWidth)
        << AlgorithmToString(algorithm)
        << ": speculative waste exceeded one batch per serial fallback";
  }
}

// ---------------------------------------------------------------------------
// Wire-level identity: a threaded engine serves byte-identical response
// lines (solution, stats, radius — everything but wall time). Speculation
// counters never appear on the wire.
// ---------------------------------------------------------------------------

TEST(SpeculationWireTest, ResponseLinesIdenticalAcrossEngineThreads) {
  auto run_engine = [](size_t threads) -> std::vector<std::string> {
    EngineConfig config;
    config.dataset = DatasetSpec::Clustered(800, 2, 3);
    config.threads = threads;
    auto engine = DiscEngine::Create(std::move(config));
    EXPECT_TRUE(engine.ok()) << engine.status().ToString();
    std::vector<std::string> lines;
    for (Algorithm algorithm :
         {Algorithm::kGreedy, Algorithm::kLazyWhite, Algorithm::kFastC}) {
      DiversifyRequest request;
      request.algorithm = algorithm;
      request.radius = 0.05;
      auto response = (*engine)->Diversify(request);
      EXPECT_TRUE(response.ok()) << response.status().ToString();
      lines.push_back(SerializeDiversifyResponse(Verb::kDiversify, *response,
                                                 /*include_wall_ms=*/false));
    }
    return lines;
  };
  const std::vector<std::string> serial = run_engine(1);
  for (size_t threads : {2u, 4u}) {
    EXPECT_EQ(serial, run_engine(threads)) << "threads=" << threads;
  }
}

}  // namespace
}  // namespace disc
