#include "core/bounds.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/disc_algorithms.h"
#include "data/generators.h"
#include "graph/exact.h"
#include "graph/neighborhood.h"
#include "graph/properties.h"
#include "metric/metric.h"
#include "mtree/mtree.h"
#include "util/random.h"

namespace disc {
namespace {

TEST(BoundsTest, KnownBValues) {
  auto e2 = MaxIndependentNeighborsBound(MetricKind::kEuclidean, 2);
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(*e2, 5);  // Lemma 2
  auto m2 = MaxIndependentNeighborsBound(MetricKind::kManhattan, 2);
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(*m2, 7);  // Lemma 3
  auto e3 = MaxIndependentNeighborsBound(MetricKind::kEuclidean, 3);
  ASSERT_TRUE(e3.ok());
  EXPECT_EQ(*e3, 24);
}

TEST(BoundsTest, UnknownCombinationsReportNotFound) {
  EXPECT_FALSE(MaxIndependentNeighborsBound(MetricKind::kEuclidean, 7).ok());
  EXPECT_FALSE(MaxIndependentNeighborsBound(MetricKind::kHamming, 2).ok());
  EXPECT_FALSE(MaxIndependentNeighborsBound(MetricKind::kChebyshev, 2).ok());
}

TEST(BoundsTest, HarmonicNumbers) {
  EXPECT_DOUBLE_EQ(HarmonicNumber(0), 0.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(1), 1.0);
  EXPECT_DOUBLE_EQ(HarmonicNumber(2), 1.5);
  EXPECT_NEAR(HarmonicNumber(100), std::log(100.0) + 0.5772, 0.01);
}

TEST(BoundsTest, GreedyCFactorGrowsLogarithmically) {
  EXPECT_GT(GreedyCApproximationFactor(100), GreedyCApproximationFactor(10));
  EXPECT_NEAR(GreedyCApproximationFactor(1000), std::log(1000.0), 0.7);
}

TEST(BoundsTest, AnnulusBoundsValidateArguments) {
  EXPECT_FALSE(IndependentNeighborsInAnnulusEuclidean(0.0, 1.0).ok());
  EXPECT_FALSE(IndependentNeighborsInAnnulusEuclidean(2.0, 1.0).ok());
  EXPECT_FALSE(IndependentNeighborsInAnnulusManhattan(-1.0, 1.0).ok());
  EXPECT_TRUE(IndependentNeighborsInAnnulusEuclidean(1.0, 1.0).ok());
}

TEST(BoundsTest, EuclideanAnnulusMatchesFormula) {
  // 9 * ceil(log_beta(r2/r1)), beta = golden ratio.
  auto b = IndependentNeighborsInAnnulusEuclidean(0.05, 0.1);
  ASSERT_TRUE(b.ok());
  const double beta = (1.0 + std::sqrt(5.0)) / 2.0;
  EXPECT_EQ(*b, 9 * static_cast<int>(std::ceil(std::log(2.0) /
                                               std::log(beta))));
}

TEST(BoundsTest, ManhattanAnnulusMatchesFormula) {
  // gamma = ceil((r2-r1)/r1) rings, 4 * sum(2i+1).
  auto b = IndependentNeighborsInAnnulusManhattan(0.1, 0.3);
  ASSERT_TRUE(b.ok());
  // gamma = 2: 4 * (3 + 5) = 32.
  EXPECT_EQ(*b, 32);
}

TEST(BoundsTest, ZoomInGrowthBoundComposition) {
  auto b = ZoomInGrowthBound(MetricKind::kEuclidean, 0.05, 0.1);
  ASSERT_TRUE(b.ok());
  EXPECT_GT(*b, 1.0);
  EXPECT_FALSE(ZoomInGrowthBound(MetricKind::kEuclidean, 0.2, 0.1).ok());
  EXPECT_FALSE(ZoomInGrowthBound(MetricKind::kHamming, 1.0, 2.0).ok());
}

// ---------------------------------------------------------------------------
// Empirical verification: the proven bounds hold for computed solutions.
// ---------------------------------------------------------------------------

TEST(BoundsEmpiricalTest, Lemma2NoObjectHasSixIndependentEuclideanNeighbors) {
  // For random 2-D point sets, no object may have more than 5 neighbors
  // that are pairwise independent.
  EuclideanMetric metric;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Dataset d = MakeUniformDataset(120, 2, seed);
    const double r = 0.25;
    NeighborhoodGraph g(d, metric, r);
    for (ObjectId v = 0; v < g.num_vertices(); ++v) {
      // Greedily extract a large independent subset of N(v); greedy picking
      // by id is enough to catch a violation if one existed.
      std::vector<ObjectId> independent;
      for (ObjectId nb : g.neighbors(v)) {
        bool ok = true;
        for (ObjectId chosen : independent) {
          if (g.HasEdge(nb, chosen)) {
            ok = false;
            break;
          }
        }
        if (ok) independent.push_back(nb);
      }
      EXPECT_LE(independent.size(), 5u) << "seed " << seed << " v " << v;
    }
  }
}

TEST(BoundsEmpiricalTest, Theorem1HeuristicWithinBTimesOptimum) {
  EuclideanMetric metric;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Dataset d = MakeUniformDataset(26, 2, seed);
    const double r = 0.3;
    NeighborhoodGraph g(d, metric, r);
    auto optimum = ExactMinimumIndependentDominatingSetSize(g);
    ASSERT_TRUE(optimum.ok());

    MTree tree(d, metric);
    ASSERT_TRUE(tree.Build().ok());
    for (bool greedy : {false, true}) {
      size_t heuristic = greedy ? GreedyDisc(&tree, r, {}).size()
                                : BasicDisc(&tree, r, true).size();
      EXPECT_LE(heuristic, 5 * *optimum) << "seed " << seed;
      EXPECT_GE(heuristic, *optimum) << "seed " << seed;
    }
  }
}

TEST(BoundsEmpiricalTest, Theorem2GreedyCWithinLogFactor) {
  EuclideanMetric metric;
  for (uint64_t seed = 10; seed <= 14; ++seed) {
    Dataset d = MakeUniformDataset(24, 2, seed);
    const double r = 0.35;
    NeighborhoodGraph g(d, metric, r);
    auto optimum = ExactMinimumIndependentDominatingSetSize(g);
    ASSERT_TRUE(optimum.ok());
    MTree tree(d, metric);
    ASSERT_TRUE(tree.Build().ok());
    size_t c_size = GreedyC(&tree, r).size();
    double factor = GreedyCApproximationFactor(g.MaxDegree());
    EXPECT_LE(static_cast<double>(c_size),
              std::max(1.0, factor) * static_cast<double>(*optimum) + 1e-9)
        << "seed " << seed;
  }
}

TEST(BoundsEmpiricalTest, Lemma7DisCIsThreeApproximationOfMaxMin) {
  // lambda (DisC fMin) vs lambda* (MaxMin optimum for the same k): the
  // paper proves lambda* <= 3*lambda. We verify with the exact MaxMin
  // optimum found by brute force on small instances.
  EuclideanMetric metric;
  Random rng(99);
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Dataset d = MakeUniformDataset(16, 2, seed);
    const double r = 0.4;
    MTree tree(d, metric);
    ASSERT_TRUE(tree.Build().ok());
    DiscResult disc = GreedyDisc(&tree, r, {});
    const size_t k = disc.size();
    if (k < 2) continue;

    auto fmin = [&](const std::vector<ObjectId>& set) {
      double best = 1e18;
      for (size_t i = 0; i < set.size(); ++i) {
        for (size_t j = i + 1; j < set.size(); ++j) {
          best = std::min(best, metric.Distance(d.point(set[i]),
                                                d.point(set[j])));
        }
      }
      return best;
    };
    double lambda = fmin(disc.solution);

    // Exhaustive MaxMin optimum over all k-subsets of 16 objects.
    double lambda_star = 0;
    std::vector<ObjectId> subset;
    const size_t n = d.size();
    for (uint32_t mask = 0; mask < (1u << n); ++mask) {
      if (static_cast<size_t>(__builtin_popcount(mask)) != k) continue;
      subset.clear();
      for (size_t v = 0; v < n; ++v) {
        if (mask & (1u << v)) subset.push_back(static_cast<ObjectId>(v));
      }
      lambda_star = std::max(lambda_star, fmin(subset));
    }
    EXPECT_LE(lambda_star, 3.0 * lambda + 1e-9) << "seed " << seed;
  }
}

}  // namespace
}  // namespace disc
