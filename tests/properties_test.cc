#include "graph/properties.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/generators.h"
#include "metric/metric.h"
#include "util/random.h"

namespace disc {
namespace {

// A 6-vertex path-like fixture mirroring Figure 4 of the paper:
// v1-v2, v2-v3, v3-v4, v4-v5, v5-v6, v5-v1 ... we use the simpler chain
// 0-1-2-3-4-5 where {1,4} dominates but is not independent-dominating-minimal
// structure; exact layout below (1-D points, radius 1).
Dataset ChainDataset() {
  Dataset d;
  for (double x : {0.0, 1.0, 2.0, 3.0, 4.0, 5.0}) {
    EXPECT_TRUE(d.Add(Point{x}).ok());
  }
  return d;
}

class PropertiesTest : public ::testing::Test {
 protected:
  PropertiesTest() : dataset_(ChainDataset()), graph_(dataset_, metric_, 1.0) {}
  Dataset dataset_;
  EuclideanMetric metric_;
  NeighborhoodGraph graph_;
};

TEST_F(PropertiesTest, IndependentSet) {
  EXPECT_TRUE(IsIndependentSet(graph_, {0, 2, 4}));
  EXPECT_TRUE(IsIndependentSet(graph_, {0, 3}));
  EXPECT_FALSE(IsIndependentSet(graph_, {0, 1}));
  EXPECT_TRUE(IsIndependentSet(graph_, {}));
  EXPECT_TRUE(IsIndependentSet(graph_, {3}));
}

TEST_F(PropertiesTest, DominatingSet) {
  EXPECT_TRUE(IsDominatingSet(graph_, {1, 4}));
  EXPECT_TRUE(IsDominatingSet(graph_, {0, 2, 4}));
  EXPECT_FALSE(IsDominatingSet(graph_, {0, 3}));  // 5 uncovered
  EXPECT_FALSE(IsDominatingSet(graph_, {}));
}

TEST_F(PropertiesTest, MaximalIndependentEquivalence) {
  // Lemma 1: independent + dominating <-> maximal independent.
  EXPECT_TRUE(IsMaximalIndependentSet(graph_, {1, 4}));
  EXPECT_TRUE(IsMaximalIndependentSet(graph_, {0, 2, 4}));
  EXPECT_FALSE(IsMaximalIndependentSet(graph_, {0, 3}));  // extendable by 5
  EXPECT_FALSE(IsMaximalIndependentSet(graph_, {0, 1}));  // not independent
}

TEST_F(PropertiesTest, VerifyDisCDiverseAcceptsValid) {
  EXPECT_TRUE(VerifyDisCDiverse(dataset_, metric_, 1.0, {1, 4}).ok());
  EXPECT_TRUE(VerifyDisCDiverse(dataset_, metric_, 1.0, {0, 2, 4}).ok());
}

TEST_F(PropertiesTest, VerifyDisCDiverseRejectsCoverageGap) {
  Status s = VerifyDisCDiverse(dataset_, metric_, 1.0, {0, 3});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("coverage"), std::string::npos);
}

TEST_F(PropertiesTest, VerifyDisCDiverseRejectsSimilarPair) {
  Status s = VerifyDisCDiverse(dataset_, metric_, 1.0, {0, 1, 2, 3, 4, 5});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("dissimilarity"), std::string::npos);
}

TEST_F(PropertiesTest, VerifyDisCDiverseRejectsOutOfRangeId) {
  Status s = VerifyDisCDiverse(dataset_, metric_, 1.0, {99});
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(PropertiesTest, VerifyCoveringAllowsDependentObjects) {
  // {1, 2, 4} covers everything but is not independent: r-C diverse only.
  EXPECT_TRUE(VerifyCovering(dataset_, metric_, 1.0, {1, 2, 4}).ok());
  EXPECT_FALSE(VerifyDisCDiverse(dataset_, metric_, 1.0, {1, 2, 4}).ok());
}

TEST_F(PropertiesTest, EmptySolutionCoversNothing) {
  Status s = VerifyCovering(dataset_, metric_, 1.0, {});
  EXPECT_FALSE(s.ok());
}

TEST(PropertiesRandomTest, MaximalIndependentIffIndependentDominating) {
  // Lemma 1 checked on random graphs: for random vertex subsets, maximality
  // of an independent set must coincide with domination.
  Dataset d = MakeUniformDataset(60, 2, 31);
  EuclideanMetric metric;
  NeighborhoodGraph g(d, metric, 0.18);
  Random rng(55);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<ObjectId> subset;
    for (ObjectId v = 0; v < g.num_vertices(); ++v) {
      if (rng.Uniform01() < 0.2) subset.push_back(v);
    }
    if (!IsIndependentSet(g, subset)) continue;
    // Maximal test by definition: no vertex can be added.
    bool extendable = false;
    for (ObjectId v = 0; v < g.num_vertices() && !extendable; ++v) {
      bool in = std::find(subset.begin(), subset.end(), v) != subset.end();
      if (in) continue;
      bool adjacent = false;
      for (ObjectId s : subset) {
        if (g.HasEdge(v, s)) {
          adjacent = true;
          break;
        }
      }
      if (!adjacent) extendable = true;
    }
    EXPECT_EQ(IsDominatingSet(g, subset), !extendable);
    EXPECT_EQ(IsMaximalIndependentSet(g, subset), !extendable);
  }
}

}  // namespace
}  // namespace disc
