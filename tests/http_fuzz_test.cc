// Deterministic fuzz and edge-case tests for the HTTP/1.1 framing layer
// (ISSUE 7): the incremental request parser must tolerate any split of a
// valid byte stream (one recv boundary per byte if need be) and must
// answer random or adversarially mutated input — garbage request lines,
// oversized heads and bodies, malformed chunked framing, pipelined junk —
// with kError, never a crash, hang, or out-of-bounds access. The suite
// runs under ASan/UBSan and TSan in CI.
//
// Like protocol_fuzz_test.cc, the generator is a fixed-seed LCG so every
// run fuzzes the same corpus: failures reproduce by re-running, and the
// iteration index pins the input.

#include "server/http.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace disc {
namespace {

/// Minimal deterministic generator (numerical-recipes LCG).
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 33;
  }

  /// Uniform in [0, bound).
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  char AnyByte() { return static_cast<char>(Below(256)); }

 private:
  uint64_t state_;
};

/// A printable summary of a fuzz input for failure messages.
std::string Summarize(const std::string& input) {
  std::string out;
  for (size_t i = 0; i < input.size() && i < 200; ++i) {
    const unsigned char byte = static_cast<unsigned char>(input[i]);
    if (byte >= 32 && byte < 127) {
      out += static_cast<char>(byte);
    } else {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\x%02x", byte);
      out += buffer;
    }
  }
  if (input.size() > 200) out += "...";
  return out;
}

/// Feeds `text` to a fresh parser in random-sized chunks (1..37 bytes, the
/// way a socket might deliver them) and collects every parsed request.
/// Sets *errored when the parser entered its terminal error state.
std::vector<HttpRequest> ParseInChunks(const std::string& text, Lcg* rng,
                                       bool* errored) {
  HttpParser parser;
  std::string buffer;
  std::vector<HttpRequest> requests;
  *errored = false;
  size_t at = 0;
  while (at < text.size()) {
    const size_t take =
        1 + rng->Below(std::min<uint64_t>(text.size() - at, 37));
    buffer.append(text, at, take);
    at += take;
    while (true) {
      HttpRequest request;
      const HttpParser::Step step = parser.Consume(&buffer, &request);
      if (step == HttpParser::Step::kRequest) {
        requests.push_back(std::move(request));
        continue;
      }
      if (step == HttpParser::Step::kError) {
        EXPECT_FALSE(parser.error().ok());
        EXPECT_FALSE(parser.error().message().empty());
        *errored = true;
        return requests;
      }
      break;  // kNeedMore: feed the next chunk
    }
  }
  return requests;
}

/// One valid wire request and the parse it must produce.
struct Sample {
  std::string text;
  HttpRequest expected;
};

std::vector<Sample> ValidCorpus() {
  auto make = [](std::string method, std::string target, bool keep_alive,
                 std::string body) {
    HttpRequest request;
    request.method = std::move(method);
    request.target = std::move(target);
    request.keep_alive = keep_alive;
    request.body = std::move(body);
    return request;
  };
  std::vector<Sample> corpus;
  corpus.push_back(
      {"POST /open HTTP/1.1\r\nHost: disc\r\nContent-Length: 5\r\n\r\nn=400",
       make("POST", "/open", true, "n=400")});
  corpus.push_back({"GET /stats HTTP/1.1\r\nHost: disc\r\n\r\n",
                    make("GET", "/stats", true, "")});
  // HTTP/1.0 defaults to close; Connection can override either way.
  corpus.push_back({"POST /close HTTP/1.0\r\nContent-Length: 0\r\n\r\n",
                    make("POST", "/close", false, "")});
  corpus.push_back(
      {"GET /stats HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
       make("GET", "/stats", true, "")});
  corpus.push_back(
      {"POST /diversify HTTP/1.1\r\nConnection: close\r\n"
       "Content-Length: 6\r\n\r\nr=0.05",
       make("POST", "/diversify", false, "r=0.05")});
  // Connection value lists and header-name case are both tolerated.
  corpus.push_back(
      {"POST /stats HTTP/1.1\r\ncOnNeCtIoN: foo, Close\r\n"
       "CONTENT-LENGTH: 0\r\n\r\n",
       make("POST", "/stats", false, "")});
  // Chunked bodies reassemble, extensions ignored, trailers discarded.
  corpus.push_back(
      {"POST /zoom HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
       "4\r\nto=0\r\n4\r\n.025\r\n0\r\n\r\n",
       make("POST", "/zoom", true, "to=0.025")});
  corpus.push_back(
      {"POST /diversify HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
       "6;ext=x\r\nr=0.05\r\n0\r\nX-Trailer: ignored\r\n\r\n",
       make("POST", "/diversify", true, "r=0.05")});
  // Bare-LF line endings are accepted everywhere CRLF is.
  corpus.push_back({"POST /open HTTP/1.1\nContent-Length: 5\n\nn=100",
                    make("POST", "/open", true, "n=100")});
  return corpus;
}

void ExpectSameRequest(const HttpRequest& got, const HttpRequest& want,
                       const std::string& context) {
  EXPECT_EQ(got.method, want.method) << context;
  EXPECT_EQ(got.target, want.target) << context;
  EXPECT_EQ(got.keep_alive, want.keep_alive) << context;
  EXPECT_EQ(got.body, want.body) << context;
}

// ---------------------------------------------------------------------------
// Valid streams: split-invariance and pipelining
// ---------------------------------------------------------------------------

TEST(HttpFuzzTest, ValidRequestsParseIdenticallyUnderAnySplit) {
  const std::vector<Sample> corpus = ValidCorpus();
  Lcg rng(0x5eed1001);
  for (size_t i = 0; i < 3000; ++i) {
    // A pipeline of 1..3 requests on one connection, possibly separated by
    // the blank lines RFC 9112 tolerates between them.
    std::vector<const Sample*> picked;
    std::string stream;
    const size_t count = 1 + rng.Below(3);
    for (size_t k = 0; k < count; ++k) {
      const Sample& sample = corpus[rng.Below(corpus.size())];
      picked.push_back(&sample);
      stream += sample.text;
      if (rng.Below(4) == 0) stream += "\r\n";
    }
    bool errored = false;
    const std::vector<HttpRequest> requests =
        ParseInChunks(stream, &rng, &errored);
    ASSERT_FALSE(errored) << "iteration " << i << ": " << Summarize(stream);
    ASSERT_EQ(requests.size(), picked.size())
        << "iteration " << i << ": " << Summarize(stream);
    for (size_t k = 0; k < requests.size(); ++k) {
      ExpectSameRequest(requests[k], picked[k]->expected,
                        "iteration " + std::to_string(i) + " request " +
                            std::to_string(k));
    }
  }
}

TEST(HttpFuzzTest, ManyChunksReassembleByteForByte) {
  // A chunked body delivered as dozens of tiny chunks with randomized
  // sizes must reassemble to exactly the original bytes.
  Lcg rng(0x5eed1002);
  for (size_t i = 0; i < 200; ++i) {
    std::string body;
    const size_t body_len = 1 + rng.Below(600);
    for (size_t b = 0; b < body_len; ++b) {
      body += static_cast<char>('a' + rng.Below(26));
    }
    std::string wire =
        "POST /diversify HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
    size_t at = 0;
    while (at < body.size()) {
      const size_t take =
          1 + rng.Below(std::min<uint64_t>(body.size() - at, 50));
      char size_line[16];
      std::snprintf(size_line, sizeof(size_line), "%zx\r\n", take);
      wire += size_line;
      wire.append(body, at, take);
      wire += "\r\n";
      at += take;
    }
    wire += "0\r\n\r\n";
    bool errored = false;
    const std::vector<HttpRequest> requests =
        ParseInChunks(wire, &rng, &errored);
    ASSERT_FALSE(errored) << "iteration " << i;
    ASSERT_EQ(requests.size(), 1u) << "iteration " << i;
    EXPECT_EQ(requests[0].body, body) << "iteration " << i;
  }
}

// ---------------------------------------------------------------------------
// Hard limits
// ---------------------------------------------------------------------------

TEST(HttpFuzzTest, OversizedHeadIsRejectedBeforeBuffering) {
  HttpParser parser;
  std::string buffer = "POST /open HTTP/1.1\r\n";
  // Pad headers past the cap without ever sending the blank line.
  while (buffer.size() <= kMaxHttpHeadBytes + 4096) {
    buffer += "X-Pad: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n";
  }
  HttpRequest request;
  EXPECT_EQ(parser.Consume(&buffer, &request), HttpParser::Step::kError);
  EXPECT_FALSE(parser.error().ok());
}

TEST(HttpFuzzTest, OversizedContentLengthIsRejectedAtTheHead) {
  // The declared size alone must trip the limit — the parser may not wait
  // for (or buffer) a body it will never accept.
  HttpParser parser;
  std::string buffer = "POST /open HTTP/1.1\r\nContent-Length: " +
                       std::to_string(kMaxHttpBodyBytes + 1) + "\r\n\r\n";
  HttpRequest request;
  EXPECT_EQ(parser.Consume(&buffer, &request), HttpParser::Step::kError);
}

TEST(HttpFuzzTest, OversizedChunkedBodyIsRejectedAtTheChunkSize) {
  HttpParser parser;
  char size_line[32];
  std::snprintf(size_line, sizeof(size_line), "%zx\r\n",
                kMaxHttpBodyBytes + 1);
  std::string buffer =
      "POST /open HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n" +
      std::string(size_line);
  HttpRequest request;
  EXPECT_EQ(parser.Consume(&buffer, &request), HttpParser::Step::kError);
}

TEST(HttpFuzzTest, ChunkedPlusContentLengthIsRejected) {
  // Request smuggling's favorite ambiguity: declaring both framings is an
  // error, not a choice (RFC 9112 §6.1).
  HttpParser parser;
  std::string buffer =
      "POST /open HTTP/1.1\r\nContent-Length: 5\r\n"
      "Transfer-Encoding: chunked\r\n\r\n";
  HttpRequest request;
  EXPECT_EQ(parser.Consume(&buffer, &request), HttpParser::Step::kError);
}

// ---------------------------------------------------------------------------
// Error-state and Expect semantics
// ---------------------------------------------------------------------------

TEST(HttpFuzzTest, ParserStaysFailedAfterAnError) {
  HttpParser parser;
  std::string buffer = "NOT A REQUEST\r\n\r\n";
  HttpRequest request;
  ASSERT_EQ(parser.Consume(&buffer, &request), HttpParser::Step::kError);
  // A perfectly valid request afterwards changes nothing: the stream is
  // unsynchronizable once framing broke.
  buffer = "GET /stats HTTP/1.1\r\n\r\n";
  EXPECT_EQ(parser.Consume(&buffer, &request), HttpParser::Step::kError);
}

TEST(HttpFuzzTest, ExpectContinueIsSurfacedOncePerRequest) {
  HttpParser parser;
  std::string buffer =
      "POST /open HTTP/1.1\r\nExpect: 100-continue\r\n"
      "Content-Length: 5\r\n\r\n";
  HttpRequest request;
  ASSERT_EQ(parser.Consume(&buffer, &request), HttpParser::Step::kNeedMore);
  EXPECT_TRUE(parser.TakeExpectContinue());
  EXPECT_FALSE(parser.TakeExpectContinue());  // take-once semantics
  buffer += "n=400";
  ASSERT_EQ(parser.Consume(&buffer, &request), HttpParser::Step::kRequest);
  EXPECT_EQ(request.body, "n=400");
  // The flag does not leak into the next request.
  EXPECT_FALSE(parser.TakeExpectContinue());
}

// ---------------------------------------------------------------------------
// Adversarial inputs
// ---------------------------------------------------------------------------

TEST(HttpFuzzTest, RandomBytesNeverCrashTheParser) {
  Lcg rng(0x5eed1003);
  for (size_t i = 0; i < 10000; ++i) {
    std::string stream(rng.Below(200), '\0');
    for (char& byte : stream) byte = rng.AnyByte();
    bool errored = false;
    (void)ParseInChunks(stream, &rng, &errored);
    // Any outcome but a crash is fine; most inputs error immediately.
  }
}

TEST(HttpFuzzTest, MutatedValidRequestsNeverCrashTheParser) {
  const std::vector<Sample> corpus = ValidCorpus();
  Lcg rng(0x5eed1004);
  for (size_t i = 0; i < 10000; ++i) {
    std::string stream = corpus[rng.Below(corpus.size())].text;
    const size_t mutations = 1 + rng.Below(4);
    for (size_t m = 0; m < mutations; ++m) {
      switch (rng.Below(5)) {
        case 0:  // truncate anywhere, possibly mid-header
          if (!stream.empty()) stream.resize(rng.Below(stream.size() + 1));
          break;
        case 1:  // flip one byte to anything, NUL included
          if (!stream.empty()) {
            stream[rng.Below(stream.size())] = rng.AnyByte();
          }
          break;
        case 2: {  // insert junk mid-stream
          static const char kBurst[] = "\r\n\x00\xff: \r;0\n";
          stream.insert(rng.Below(stream.size() + 1), kBurst,
                        sizeof(kBurst) - 1);
          break;
        }
        case 3:  // duplicate a random slice (repeated headers, glued heads)
          if (!stream.empty()) {
            const size_t from = rng.Below(stream.size());
            const size_t count = rng.Below(stream.size() - from) + 1;
            stream.insert(rng.Below(stream.size() + 1),
                          stream.substr(from, count));
          }
          break;
        case 4:  // splice a second request on the same stream
          stream += corpus[rng.Below(corpus.size())].text;
          break;
      }
    }
    bool errored = false;
    (void)ParseInChunks(stream, &rng, &errored);
  }
}

// ---------------------------------------------------------------------------
// The request -> command mapping and response framing helpers
// ---------------------------------------------------------------------------

TEST(HttpFuzzTest, CommandMappingNeverCrashesOnArbitraryRequests) {
  Lcg rng(0x5eed1005);
  const std::vector<std::string> targets = {
      "/open", "/diversify", "/zoom", "/stats", "/close", "/", "/nope", ""};
  const std::vector<std::string> methods = {"GET",     "POST", "PUT",
                                            "OPTIONS", "zZz",  ""};
  for (size_t i = 0; i < 5000; ++i) {
    HttpRequest request;
    request.method = methods[rng.Below(methods.size())];
    request.target = targets[rng.Below(targets.size())];
    request.body.resize(rng.Below(80));
    for (char& byte : request.body) byte = rng.AnyByte();
    auto line = HttpRequestToCommandLine(request);
    if (!line.ok()) continue;
    // A mapped command is a single line: the framing bytes were scrubbed.
    EXPECT_EQ(line->find('\n'), std::string::npos) << Summarize(*line);
    EXPECT_EQ(line->find('\r'), std::string::npos) << Summarize(*line);
  }
}

TEST(HttpFuzzTest, CommandMappingPinsEndpointsAndMethods) {
  HttpRequest request;
  request.method = "POST";
  request.target = "/diversify";
  request.body = " r=0.05\nadapt=true\t ";
  auto line = HttpRequestToCommandLine(request);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(*line, "DIVERSIFY r=0.05 adapt=true");

  request.target = "/stats";
  request.method = "GET";
  request.body.clear();
  line = HttpRequestToCommandLine(request);
  ASSERT_TRUE(line.ok());
  EXPECT_EQ(*line, "STATS");

  request.target = "/open";  // GET on a mutating endpoint
  EXPECT_EQ(HttpRequestToCommandLine(request).status().code(),
            StatusCode::kInvalidArgument);
  request.method = "POST";
  request.target = "/missing";
  EXPECT_EQ(HttpRequestToCommandLine(request).status().code(),
            StatusCode::kNotFound);
}

TEST(HttpFuzzTest, StatusMappingNeverCrashesAndPinsTheTable) {
  EXPECT_EQ(HttpStatusForProtocolLine("{\"ok\":true,\"cmd\":\"STATS\"}"),
            200);
  EXPECT_EQ(HttpStatusForProtocolLine(
                "{\"ok\":false,\"cmd\":\"?\",\"code\":\"Busy\"}"),
            503);
  EXPECT_EQ(HttpStatusForProtocolLine(
                "{\"ok\":false,\"code\":\"InvalidArgument\"}"),
            400);
  EXPECT_EQ(HttpStatusForProtocolLine("{\"ok\":false,\"code\":\"NotFound\"}"),
            404);
  EXPECT_EQ(HttpStatusForProtocolLine(
                "{\"ok\":false,\"code\":\"FailedPrecondition\"}"),
            409);
  EXPECT_EQ(
      HttpStatusForProtocolLine("{\"ok\":false,\"code\":\"Unimplemented\"}"),
      501);
  EXPECT_EQ(HttpStatusForProtocolLine("{\"ok\":false,\"code\":\"IOError\"}"),
            500);
  EXPECT_EQ(HttpStatusForProtocolLine("not json at all"), 500);

  Lcg rng(0x5eed1006);
  for (size_t i = 0; i < 5000; ++i) {
    std::string line(rng.Below(120), '\0');
    for (char& byte : line) byte = rng.AnyByte();
    const int status = HttpStatusForProtocolLine(line);
    EXPECT_TRUE(status == 200 || status == 400 || status == 404 ||
                status == 409 || status == 500 || status == 501 ||
                status == 503)
        << status << " for " << Summarize(line);
  }
}

TEST(HttpFuzzTest, ResponseWriterFramesExactly) {
  const std::string body = "{\"ok\":true}\n";
  const std::string ok = WriteHttpResponse(200, body, /*keep_alive=*/true);
  EXPECT_EQ(ok.rfind("HTTP/1.1 200 OK\r\n", 0), 0u) << ok;
  EXPECT_NE(ok.find("Content-Length: " + std::to_string(body.size())),
            std::string::npos)
      << ok;
  EXPECT_NE(ok.find("Connection: keep-alive\r\n\r\n"), std::string::npos)
      << ok;
  EXPECT_EQ(ok.find("Retry-After"), std::string::npos) << ok;
  EXPECT_EQ(ok.substr(ok.size() - body.size()), body);

  const std::string busy = WriteHttpResponse(503, body, /*keep_alive=*/false,
                                             /*retry_after_seconds=*/1);
  EXPECT_EQ(busy.rfind("HTTP/1.1 503 Service Unavailable\r\n", 0), 0u)
      << busy;
  EXPECT_NE(busy.find("Retry-After: 1\r\n"), std::string::npos) << busy;
  EXPECT_NE(busy.find("Connection: close\r\n\r\n"), std::string::npos)
      << busy;
}

}  // namespace
}  // namespace disc
