// End-to-end tests for the disc_serve transport: the in-process DiscServer
// (protocol handling, session manager pooling, concurrency) plus a smoke
// test that spawns the real daemon binary and drives it with disc_client.
//
// The concurrency contract under test (ISSUE 4): N concurrent client
// sessions on one server produce byte-identical DIVERSIFY/ZOOM results to
// direct DiscEngine calls — sessions are sharded across exclusive engine
// leases, so no request ever races another on a tree's color state. The
// suite runs in CI under both ASan/UBSan and TSan.

#include "server/server.h"

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <latch>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "data/generators.h"
#include "engine/engine.h"
#include "server/net.h"
#include "server/protocol.h"
#include "util/status.h"

namespace disc {
namespace {

std::unique_ptr<DiscServer> StartServer(size_t workers = 4,
                                        size_t max_idle_engines = 8) {
  ServerOptions options;
  options.port = 0;  // ephemeral; parallel ctest runs must not collide
  options.workers = workers;
  options.max_idle_engines = max_idle_engines;
  auto server = DiscServer::Start(options);
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(server).value();
}

LineClient ConnectTo(const DiscServer& server) {
  auto client = LineClient::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

std::string MustRoundtrip(LineClient& client, const std::string& line) {
  auto response = client.Roundtrip(line);
  EXPECT_TRUE(response.ok()) << line << ": "
                             << response.status().ToString();
  return response.ok() ? *response : "";
}

/// The deterministic prefix of a serialized response: everything except the
/// machine-dependent trailing wall_ms field.
std::string DeterministicPrefix(Verb verb, const DiversifyResponse& response) {
  std::string line =
      SerializeDiversifyResponse(verb, response, /*include_wall_ms=*/false);
  return line.substr(0, line.size() - 1);  // drop the closing brace
}

/// Same, for a DIVERSIFY served through §5.2 radius adaptation.
std::string AdaptedPrefix(const DiversifyResponse& response,
                          double seed_radius) {
  std::string line = SerializeAdaptedResponse(response, seed_radius,
                                              /*include_wall_ms=*/false);
  return line.substr(0, line.size() - 1);  // drop the closing brace
}

/// Everything before the machine-dependent trailing wall_ms field (the
/// whole line when it carries none) — for comparing full transcripts
/// produced by two different runs, where the replica-prefix helpers above
/// do not apply.
std::string StripWallMs(const std::string& line) {
  const size_t pos = line.find(",\"wall_ms\":");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

EngineConfig TestConfig(size_t n = 400, uint64_t seed = 9) {
  EngineConfig config;
  config.dataset = DatasetSpec::Clustered(n, 2, seed);
  return config;
}

// ---------------------------------------------------------------------------
// Single-session protocol behavior
// ---------------------------------------------------------------------------

TEST(ServerTest, OpenDiversifyZoomMatchesDirectEngineByteForByte) {
  auto server = StartServer();
  LineClient client = ConnectTo(*server);

  std::string open = MustRoundtrip(
      client, "OPEN dataset=clustered n=400 dim=2 seed=9");
  EXPECT_NE(open.find("\"ok\":true"), std::string::npos) << open;
  EXPECT_NE(open.find("\"n\":400"), std::string::npos) << open;
  EXPECT_NE(open.find("\"reused\":false"), std::string::npos) << open;

  // The same requests against a directly-constructed engine.
  auto engine = DiscEngine::Create(TestConfig());
  ASSERT_TRUE(engine.ok());
  DiversifyRequest diversify;
  diversify.radius = 0.1;
  auto expected = (*engine)->Diversify(diversify);
  ASSERT_TRUE(expected.ok());
  ZoomRequest zoom;
  zoom.radius = 0.05;
  auto expected_zoom = (*engine)->Zoom(zoom);
  ASSERT_TRUE(expected_zoom.ok());

  std::string wire = MustRoundtrip(client, "DIVERSIFY r=0.1");
  EXPECT_EQ(wire.rfind(DeterministicPrefix(Verb::kDiversify, *expected), 0),
            0u)
      << wire;

  std::string wire_zoom = MustRoundtrip(client, "ZOOM to=0.05");
  EXPECT_EQ(
      wire_zoom.rfind(DeterministicPrefix(Verb::kZoom, *expected_zoom), 0),
      0u)
      << wire_zoom;

  EXPECT_EQ(MustRoundtrip(client, "CLOSE"),
            "{\"ok\":true,\"cmd\":\"CLOSE\"}");
}

TEST(ServerTest, QualityFieldsTravelOverTheWire) {
  auto server = StartServer();
  LineClient client = ConnectTo(*server);
  MustRoundtrip(client, "OPEN dataset=uniform n=150 dim=2 seed=11");
  std::string wire = MustRoundtrip(client, "DIVERSIFY r=0.15 quality=true");
  EXPECT_NE(wire.find("\"verified\":\"OK\""), std::string::npos) << wire;
  EXPECT_NE(wire.find("\"coverage\":1"), std::string::npos) << wire;
}

TEST(ServerTest, StatsReportsSessionState) {
  auto server = StartServer();
  LineClient client = ConnectTo(*server);
  MustRoundtrip(client, "OPEN dataset=clustered n=300 dim=2 seed=5");

  std::string before = MustRoundtrip(client, "STATS");
  EXPECT_NE(before.find("\"has_solution\":false"), std::string::npos)
      << before;

  MustRoundtrip(client, "DIVERSIFY r=0.1");
  std::string after = MustRoundtrip(client, "STATS");
  EXPECT_NE(after.find("\"has_solution\":true"), std::string::npos) << after;
  EXPECT_NE(after.find("\"algorithm\":\"greedy\""), std::string::npos)
      << after;
  EXPECT_NE(after.find("\"cached_solutions\":1"), std::string::npos) << after;
}

TEST(ServerTest, ProtocolErrorsComeBackAsErrorLines) {
  auto server = StartServer();
  LineClient client = ConnectTo(*server);

  // Before OPEN, everything but OPEN is a precondition failure.
  for (const char* cmd : {"DIVERSIFY r=0.1", "ZOOM to=0.1", "STATS",
                          "CLOSE"}) {
    std::string response = MustRoundtrip(client, cmd);
    EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
    EXPECT_NE(response.find("\"code\":\"FailedPrecondition\""),
              std::string::npos)
        << response;
  }

  // Unknown verbs and malformed lines parse-fail with cmd "?".
  std::string unknown = MustRoundtrip(client, "LAUNCH r=0.1");
  EXPECT_NE(unknown.find("\"cmd\":\"?\""), std::string::npos) << unknown;

  // A failed OPEN leaves the connection usable.
  std::string bad_open = MustRoundtrip(client, "OPEN dataset=nope");
  EXPECT_NE(bad_open.find("\"ok\":false"), std::string::npos) << bad_open;
  std::string good_open =
      MustRoundtrip(client, "OPEN dataset=uniform n=100 dim=2 seed=1");
  EXPECT_NE(good_open.find("\"ok\":true"), std::string::npos) << good_open;

  // Engine-level misuse surfaces with the engine's status code.
  std::string zoom = MustRoundtrip(client, "ZOOM to=0.05");
  EXPECT_NE(zoom.find("\"code\":\"FailedPrecondition\""), std::string::npos)
      << zoom;
  std::string double_open =
      MustRoundtrip(client, "OPEN dataset=uniform n=100 dim=2 seed=1");
  EXPECT_NE(double_open.find("already open"), std::string::npos)
      << double_open;
}

TEST(ServerTest, BlankLinesAreSkippedSilently) {
  auto server = StartServer();
  LineClient client = ConnectTo(*server);
  ASSERT_TRUE(client.SendLine("").ok());
  ASSERT_TRUE(client.SendLine("  \t ").ok());
  // If the blanks produced responses, this would read one of them instead.
  std::string response = MustRoundtrip(client, "STATS");
  EXPECT_NE(response.find("\"cmd\":\"STATS\""), std::string::npos)
      << response;
}

// ---------------------------------------------------------------------------
// Engine pooling across sessions
// ---------------------------------------------------------------------------

TEST(ServerTest, PooledEngineIsReusedWithWarmCachesAcrossSessions) {
  auto server = StartServer();
  LineClient client = ConnectTo(*server);

  MustRoundtrip(client, "OPEN dataset=clustered n=400 dim=2 seed=9");
  std::string first = MustRoundtrip(client, "DIVERSIFY r=0.1");
  EXPECT_NE(first.find("\"from_cache\":false"), std::string::npos) << first;
  MustRoundtrip(client, "CLOSE");

  // Same key -> the pooled engine comes back, caches warm: an identical
  // DIVERSIFY is a cache hit with zero index work, and zooming still works
  // because the cached color snapshot was restored.
  std::string reopened =
      MustRoundtrip(client, "OPEN dataset=clustered n=400 dim=2 seed=9");
  EXPECT_NE(reopened.find("\"reused\":true"), std::string::npos) << reopened;
  EXPECT_NE(reopened.find("\"sessions_served\":2"), std::string::npos)
      << reopened;

  std::string second = MustRoundtrip(client, "DIVERSIFY r=0.1");
  EXPECT_NE(second.find("\"from_cache\":true"), std::string::npos) << second;
  EXPECT_NE(second.find("\"node_accesses\":0"), std::string::npos) << second;

  std::string zoom = MustRoundtrip(client, "ZOOM to=0.05");
  EXPECT_NE(zoom.find("\"ok\":true"), std::string::npos) << zoom;

  SessionManagerStats stats = server->manager_stats();
  EXPECT_EQ(stats.leases_acquired, 2u);
  EXPECT_EQ(stats.pool_hits, 1u);
  EXPECT_EQ(stats.engines_created, 1u);
}

TEST(ServerTest, DifferentKeysGetDifferentEngines) {
  auto server = StartServer();
  LineClient client = ConnectTo(*server);
  MustRoundtrip(client, "OPEN dataset=uniform n=100 dim=2 seed=1");
  MustRoundtrip(client, "CLOSE");
  // Same generator, different seed: a different dataset, so no reuse.
  std::string open =
      MustRoundtrip(client, "OPEN dataset=uniform n=100 dim=2 seed=2");
  EXPECT_NE(open.find("\"reused\":false"), std::string::npos) << open;
  EXPECT_EQ(server->manager_stats().engines_created, 2u);
}

TEST(SessionManagerTest, ProvidedDatasetsAreNeverPooled) {
  // Two caller-materialized datasets are not interchangeable just because
  // their metric and build strategy match: leases over kProvided specs
  // must never reuse a pooled engine (EnginePoolKey returns "").
  SessionManager manager(/*max_idle_engines=*/8);
  EngineConfig first;
  first.dataset = DatasetSpec::Provided(MakeUniformDataset(50, 2, 1));
  EXPECT_EQ(EnginePoolKey(first), "");
  {
    auto lease = manager.Acquire(first);
    ASSERT_TRUE(lease.ok()) << lease.status().ToString();
    EXPECT_FALSE(lease->reused());
  }
  EngineConfig second;
  second.dataset = DatasetSpec::Provided(MakeUniformDataset(80, 2, 2));
  auto lease = manager.Acquire(second);
  ASSERT_TRUE(lease.ok());
  EXPECT_FALSE(lease->reused());
  EXPECT_EQ(lease->engine().dataset().size(), 80u);
  EXPECT_EQ(manager.stats().engines_created, 2u);
  EXPECT_EQ(manager.stats().idle_engines, 0u);
}

TEST(SessionManagerTest, PrewarmBuildsEnginesConcurrentlyIntoThePool) {
  SessionManager manager(/*max_idle_engines=*/8);
  std::vector<EngineConfig> configs = {TestConfig(300, 1), TestConfig(300, 2)};
  // Unpoolable configs are skipped, not built.
  EngineConfig provided;
  provided.dataset = DatasetSpec::Provided(MakeUniformDataset(50, 2, 3));
  configs.push_back(provided);

  Status status = manager.Prewarm(configs, /*threads=*/4);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(manager.stats().engines_created, 2u);
  EXPECT_EQ(manager.stats().idle_engines, 2u);

  // The first OPEN of a prewarmed key is a pool hit — no build.
  auto lease = manager.Acquire(TestConfig(300, 1));
  ASSERT_TRUE(lease.ok()) << lease.status().ToString();
  EXPECT_TRUE(lease->reused());
  EXPECT_EQ(manager.stats().engines_created, 2u);
  EXPECT_EQ(manager.stats().pool_hits, 1u);
}

TEST(SessionManagerTest, PrewarmSurfacesBuildErrors) {
  SessionManager manager(/*max_idle_engines=*/8);
  EngineConfig bad;
  bad.dataset = DatasetSpec::Csv("/nonexistent/prewarm.csv");
  Status status = manager.Prewarm({TestConfig(200, 4), bad}, /*threads=*/2);
  EXPECT_FALSE(status.ok());
  // The good engine was still built and pooled.
  EXPECT_EQ(manager.stats().engines_created, 1u);
  EXPECT_EQ(manager.stats().idle_engines, 1u);
}

TEST(ServerTest, PrewarmedServerReusesEngineOnFirstOpen) {
  ServerOptions options;
  options.port = 0;
  options.workers = 2;
  options.max_idle_engines = 4;
  options.engine_threads = 2;
  options.prewarm = {TestConfig(350, 21)};
  auto server = DiscServer::Start(std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  LineClient client = ConnectTo(**server);
  std::string open =
      MustRoundtrip(client, "OPEN dataset=clustered n=350 dim=2 seed=21");
  EXPECT_NE(open.find("\"reused\":true"), std::string::npos) << open;
  // sessions_served 2: the prewarm build was session 1, this lease is 2.
  EXPECT_NE(open.find("\"sessions_served\":2"), std::string::npos) << open;
  SessionManagerStats stats = (*server)->manager_stats();
  EXPECT_EQ(stats.pool_hits, 1u);
}

TEST(ServerTest, StatsReportsWireCacheHits) {
  auto server = StartServer();
  LineClient client = ConnectTo(*server);
  MustRoundtrip(client, "OPEN dataset=clustered n=300 dim=2 seed=6");
  std::string cold = MustRoundtrip(client, "STATS");
  EXPECT_NE(cold.find("\"cache_hits\":0"), std::string::npos) << cold;

  MustRoundtrip(client, "DIVERSIFY r=0.1");
  MustRoundtrip(client, "DIVERSIFY r=0.1");  // identical -> cache hit
  std::string warm = MustRoundtrip(client, "STATS");
  EXPECT_NE(warm.find("\"cache_hits\":1"), std::string::npos) << warm;
}

TEST(ServerTest, OversizedLinesCloseTheConnectionInsteadOfBuffering) {
  auto server = StartServer();
  LineClient client = ConnectTo(*server);
  // Far beyond the 1 MB line cap, no newline: the server must drop the
  // connection rather than buffer the stream indefinitely.
  std::string flood(3u << 20, 'a');
  (void)client.SendLine(flood);
  auto response = client.RecvLine();
  EXPECT_FALSE(response.ok());
}

TEST(ServerTest, IdlePoolEvictsLeastRecentlyReleased) {
  auto server = StartServer(/*workers=*/2, /*max_idle_engines=*/1);
  LineClient client = ConnectTo(*server);
  MustRoundtrip(client, "OPEN dataset=uniform n=80 dim=2 seed=1");
  MustRoundtrip(client, "CLOSE");
  MustRoundtrip(client, "OPEN dataset=uniform n=80 dim=2 seed=2");
  MustRoundtrip(client, "CLOSE");  // evicts seed=1 (cap is 1)

  std::string open =
      MustRoundtrip(client, "OPEN dataset=uniform n=80 dim=2 seed=1");
  EXPECT_NE(open.find("\"reused\":false"), std::string::npos) << open;
  EXPECT_EQ(server->manager_stats().engines_evicted, 1u);
}

// ---------------------------------------------------------------------------
// Concurrency: the acceptance-criteria test
// ---------------------------------------------------------------------------

// N concurrent sessions, all open at once on one server, each issuing
// DIVERSIFY + ZOOM at its own radius. Every wire response must be
// byte-identical (modulo the trailing wall_ms field) to a direct
// DiscEngine call with the same config — exclusive engine leases mean no
// session can observe another's tree mutations. Run under TSan in CI.
TEST(ServerConcurrencyTest, ConcurrentSessionsMatchDirectEngineCalls) {
  constexpr size_t kSessions = 4;
  auto server = StartServer(/*workers=*/kSessions);

  // Open all sessions before any work: the leases coexist, so the manager
  // must shard them onto distinct engines (nothing is idle to reuse).
  std::vector<LineClient> clients;
  for (size_t i = 0; i < kSessions; ++i) {
    clients.push_back(ConnectTo(*server));
    std::string open = MustRoundtrip(
        clients.back(), "OPEN dataset=clustered n=400 dim=2 seed=9");
    ASSERT_NE(open.find("\"ok\":true"), std::string::npos) << open;
    ASSERT_NE(open.find("\"reused\":false"), std::string::npos) << open;
  }
  EXPECT_EQ(server->manager_stats().engines_created, kSessions);

  // Each session diversifies and zooms at its own radius, concurrently.
  std::vector<double> radii;
  for (size_t i = 0; i < kSessions; ++i) {
    radii.push_back(0.05 + 0.02 * static_cast<double>(i));
  }
  std::vector<std::string> diversify_wire(kSessions);
  std::vector<std::string> zoom_wire(kSessions);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      diversify_wire[i] = MustRoundtrip(
          clients[i], "DIVERSIFY r=" + FormatJsonDouble(radii[i]));
      zoom_wire[i] = MustRoundtrip(
          clients[i], "ZOOM to=" + FormatJsonDouble(radii[i] / 2));
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Replay each session against its own direct engine and compare bytes.
  for (size_t i = 0; i < kSessions; ++i) {
    auto engine = DiscEngine::Create(TestConfig());
    ASSERT_TRUE(engine.ok());
    DiversifyRequest diversify;
    diversify.radius = radii[i];
    auto expected = (*engine)->Diversify(diversify);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(diversify_wire[i].rfind(
                  DeterministicPrefix(Verb::kDiversify, *expected), 0),
              0u)
        << "session " << i << ": " << diversify_wire[i];

    ZoomRequest zoom;
    zoom.radius = radii[i] / 2;
    auto expected_zoom = (*engine)->Zoom(zoom);
    ASSERT_TRUE(expected_zoom.ok());
    EXPECT_EQ(zoom_wire[i].rfind(
                  DeterministicPrefix(Verb::kZoom, *expected_zoom), 0),
              0u)
        << "session " << i << ": " << zoom_wire[i];
  }

  for (LineClient& client : clients) {
    EXPECT_EQ(MustRoundtrip(client, "CLOSE"),
              "{\"ok\":true,\"cmd\":\"CLOSE\"}");
  }
}

TEST(ServerConcurrencyTest, ManyShortSessionsChurnThePoolSafely) {
  auto server = StartServer(/*workers=*/4, /*max_idle_engines=*/2);
  constexpr size_t kThreads = 4;
  constexpr size_t kSessionsPerThread = 5;

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t s = 0; s < kSessionsPerThread; ++s) {
        LineClient client = ConnectTo(*server);
        // Two distinct keys ping-pong through the size-2 idle pool.
        std::string open = MustRoundtrip(
            client, "OPEN dataset=uniform n=120 dim=2 seed=" +
                        std::to_string(t % 2));
        ASSERT_NE(open.find("\"ok\":true"), std::string::npos) << open;
        std::string wire = MustRoundtrip(client, "DIVERSIFY r=0.15");
        ASSERT_NE(wire.find("\"ok\":true"), std::string::npos) << wire;
        MustRoundtrip(client, "CLOSE");
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  SessionManagerStats stats = server->manager_stats();
  EXPECT_EQ(stats.leases_acquired, kThreads * kSessionsPerThread);
  EXPECT_GT(stats.pool_hits, 0u);
  EXPECT_LE(stats.idle_engines, 2u);
}

// ---------------------------------------------------------------------------
// Request coalescing (the single-flight table, ISSUE 6): N concurrent
// identical requests cost one computation, and every client receives the
// byte-identical response line.
// ---------------------------------------------------------------------------

/// Parses an unsigned JSON field out of a response line.
uint64_t ExtractUint(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " missing in " << json;
  if (pos == std::string::npos) return 0;
  return std::strtoull(json.c_str() + pos + needle.size(), nullptr, 10);
}

TEST(ServerCoalescingTest, ConcurrentIdenticalRequestsComputeOnce) {
  constexpr size_t kClients = 6;
  auto server = StartServer(/*workers=*/4, /*max_idle_engines=*/kClients);

  // Reference: the identical sequence against a direct engine.
  auto engine = DiscEngine::Create(TestConfig());
  ASSERT_TRUE(engine.ok());
  DiversifyRequest diversify;
  diversify.radius = 0.07;
  auto expected = (*engine)->Diversify(diversify);
  ASSERT_TRUE(expected.ok());
  ZoomRequest zoom;
  zoom.radius = 0.035;
  auto expected_zoom = (*engine)->Zoom(zoom);
  ASSERT_TRUE(expected_zoom.ok());

  std::vector<LineClient> clients;
  for (size_t i = 0; i < kClients; ++i) {
    clients.push_back(ConnectTo(*server));
    std::string open = MustRoundtrip(
        clients.back(), "OPEN dataset=clustered n=400 dim=2 seed=9");
    ASSERT_NE(open.find("\"ok\":true"), std::string::npos) << open;
  }

  // Phase 1: N concurrent identical DIVERSIFYs. Whether a client lands in
  // the in-progress flight or on the memoized outcome, it must receive the
  // leader's exact bytes — including wall_ms.
  std::vector<std::string> wire(kClients);
  {
    std::vector<std::thread> threads;
    for (size_t i = 0; i < kClients; ++i) {
      threads.emplace_back(
          [&, i] { wire[i] = MustRoundtrip(clients[i], "DIVERSIFY r=0.07"); });
    }
    for (std::thread& thread : threads) thread.join();
  }
  EXPECT_EQ(wire[0].rfind(DeterministicPrefix(Verb::kDiversify, *expected),
                          0),
            0u)
      << wire[0];
  for (size_t i = 1; i < kClients; ++i) {
    EXPECT_EQ(wire[i], wire[0]) << "client " << i;
  }

  // Exactly one engine ran the algorithm; every other session adopted the
  // leader's capsule (STATS `coalesced`).
  uint64_t computations = 0;
  uint64_t coalesced = 0;
  for (LineClient& client : clients) {
    std::string stats = MustRoundtrip(client, "STATS");
    computations += ExtractUint(stats, "computations");
    coalesced += ExtractUint(stats, "coalesced");
  }
  EXPECT_EQ(computations, 1u);
  EXPECT_EQ(coalesced, kClients - 1);

  // Phase 2: every session now holds the same fingerprint, so N identical
  // ZOOMs coalesce the same way.
  {
    std::vector<std::thread> threads;
    for (size_t i = 0; i < kClients; ++i) {
      threads.emplace_back(
          [&, i] { wire[i] = MustRoundtrip(clients[i], "ZOOM to=0.035"); });
    }
    for (std::thread& thread : threads) thread.join();
  }
  EXPECT_EQ(wire[0].rfind(DeterministicPrefix(Verb::kZoom, *expected_zoom),
                          0),
            0u)
      << wire[0];
  for (size_t i = 1; i < kClients; ++i) {
    EXPECT_EQ(wire[i], wire[0]) << "client " << i;
  }

  computations = 0;
  coalesced = 0;
  for (LineClient& client : clients) {
    std::string stats = MustRoundtrip(client, "STATS");
    computations += ExtractUint(stats, "computations");
    coalesced += ExtractUint(stats, "coalesced");
  }
  EXPECT_EQ(computations, 2u);
  EXPECT_EQ(coalesced, 2 * (kClients - 1));
  EXPECT_EQ(server->server_stats().coalesced_responses, 2 * (kClients - 1));

  SessionManagerStats manager = server->manager_stats();
  EXPECT_EQ(manager.flights_led, 2u);
  EXPECT_EQ(manager.flights_coalesced + manager.flights_memoized,
            2 * (kClients - 1));

  for (LineClient& client : clients) {
    EXPECT_EQ(MustRoundtrip(client, "CLOSE"),
              "{\"ok\":true,\"cmd\":\"CLOSE\"}");
  }
}

TEST(ServerCoalescingTest, WarmEngineRepeatStaysAnHonestCacheHit) {
  // A session whose own engine already caches the answer must NOT replay a
  // coalesced from_cache=false line: the pool-reuse contract (warm repeat
  // => "from_cache":true, zero node accesses) outranks the memo.
  auto server = StartServer(/*workers=*/2, /*max_idle_engines=*/2);
  LineClient client = ConnectTo(*server);
  MustRoundtrip(client, "OPEN dataset=clustered n=400 dim=2 seed=9");
  std::string first = MustRoundtrip(client, "DIVERSIFY r=0.09");
  EXPECT_NE(first.find("\"from_cache\":false"), std::string::npos) << first;
  std::string repeat = MustRoundtrip(client, "DIVERSIFY r=0.09");
  EXPECT_NE(repeat.find("\"from_cache\":true"), std::string::npos) << repeat;
  EXPECT_NE(repeat.find("\"node_accesses\":0"), std::string::npos) << repeat;
}

// ---------------------------------------------------------------------------
// Radius-aware coalescing (ISSUE 7): DIVERSIFY adapt=true may be served
// from a memoized solution at another radius through the engine's §5.2
// zoom adaptation — and the adapted answer must be byte-identical to the
// same adopt-then-zoom chain run cold on a replica engine.
// ---------------------------------------------------------------------------

TEST(ServerAdaptTest, AdaptedRequestMatchesColdComputationByteForByte) {
  auto server = StartServer();

  // Replica chain: Diversify at the seed radius, then Zoom to the target.
  // The server's adapted answer adopts the memoized capsule and runs the
  // identical zoom, so every byte up to wall_ms must match.
  auto engine = DiscEngine::Create(TestConfig());
  ASSERT_TRUE(engine.ok());
  DiversifyRequest seed_request;
  seed_request.radius = 0.06;
  ASSERT_TRUE((*engine)->Diversify(seed_request).ok());
  ZoomRequest adapt_zoom;
  adapt_zoom.radius = 0.05;
  auto expected = (*engine)->Zoom(adapt_zoom);
  ASSERT_TRUE(expected.ok());

  // Session A computes (and thereby memoizes) the seed solution at r=0.06.
  LineClient seeder = ConnectTo(*server);
  MustRoundtrip(seeder, "OPEN dataset=clustered n=400 dim=2 seed=9");
  std::string seeded = MustRoundtrip(seeder, "DIVERSIFY r=0.06");
  ASSERT_NE(seeded.find("\"ok\":true"), std::string::npos) << seeded;

  // Session B asks for a *different* radius with adapt=true: not an
  // identical flight key, yet served from A's memoized outcome.
  LineClient client = ConnectTo(*server);
  MustRoundtrip(client, "OPEN dataset=clustered n=400 dim=2 seed=9");
  std::string adapted = MustRoundtrip(client, "DIVERSIFY r=0.05 adapt=true");
  EXPECT_EQ(adapted.rfind(AdaptedPrefix(*expected, 0.06), 0), 0u) << adapted;
  EXPECT_NE(adapted.find("\"adapted\":true,\"seed_radius\":0.06"),
            std::string::npos)
      << adapted;
  EXPECT_EQ(server->manager_stats().flights_adapted, 1u);

  // The adapted session's engine state is the replica's state: a follow-up
  // ZOOM continues the chain byte-for-byte.
  ZoomRequest followup;
  followup.radius = 0.03;
  auto expected_followup = (*engine)->Zoom(followup);
  ASSERT_TRUE(expected_followup.ok());
  std::string wire_zoom = MustRoundtrip(client, "ZOOM to=0.03");
  EXPECT_EQ(wire_zoom.rfind(
                DeterministicPrefix(Verb::kZoom, *expected_followup), 0),
            0u)
      << wire_zoom;

  MustRoundtrip(seeder, "CLOSE");
  MustRoundtrip(client, "CLOSE");
}

TEST(ServerAdaptTest, AdaptWithoutCompatibleSeedComputesCold) {
  auto server = StartServer();

  auto engine = DiscEngine::Create(TestConfig());
  ASSERT_TRUE(engine.ok());
  DiversifyRequest request;
  request.radius = 0.05;
  auto expected = (*engine)->Diversify(request);
  ASSERT_TRUE(expected.ok());

  // Nothing is memoized yet: adapt is advisory, so the request computes
  // cold and the response carries no adapted fields (it is byte-identical
  // to a plain DIVERSIFY).
  LineClient client = ConnectTo(*server);
  MustRoundtrip(client, "OPEN dataset=clustered n=400 dim=2 seed=9");
  std::string wire = MustRoundtrip(client, "DIVERSIFY r=0.05 adapt=true");
  EXPECT_EQ(wire.rfind(DeterministicPrefix(Verb::kDiversify, *expected), 0),
            0u)
      << wire;
  EXPECT_EQ(wire.find("\"adapted\""), std::string::npos) << wire;
  EXPECT_EQ(server->manager_stats().flights_adapted, 0u);
  MustRoundtrip(client, "CLOSE");
}

// ---------------------------------------------------------------------------
// Proactive adaptation *across* requests: a flight queued at r' while a
// same-family solve at r is still in the air rides that computation
// instead of leading its own.
// ---------------------------------------------------------------------------

/// A memoizable seedable outcome for driving the manager's radius-aware
/// paths directly (the capsule contents never matter for selection).
FlightOutcome SeedOutcome(const std::string& family, double radius,
                          const std::string& response) {
  FlightOutcome outcome;
  outcome.response = response;
  outcome.capsule = std::make_shared<DiscEngine::SessionCapsule>();
  outcome.adapt_family = family;
  outcome.radius = radius;
  return outcome;
}

TEST(SessionManagerTest, FindAdaptableSeedPrefersMostRecentOnEqualDistance) {
  // Exactly representable radii, so 0.5 really is equidistant from both.
  SessionManager manager(/*max_idle_engines=*/0, /*max_cached_results=*/8);
  manager.FinishFlight("k-old", SeedOutcome("fam", 0.25, "older"), true);

  // With a single memoized outcome: equal radius never matches (that is
  // the exact single-flight/memo path), and neither does a foreign family.
  FlightOutcome seed;
  double seed_radius = 0.0;
  EXPECT_FALSE(manager.FindAdaptableSeed("fam", 0.25, &seed, &seed_radius));
  EXPECT_FALSE(manager.FindAdaptableSeed("other", 0.5, &seed, &seed_radius));

  // The tie goes to the most recently finished outcome (its caches are the
  // warmer bet).
  manager.FinishFlight("k-new", SeedOutcome("fam", 0.75, "newer"), true);
  ASSERT_TRUE(manager.FindAdaptableSeed("fam", 0.5, &seed, &seed_radius));
  EXPECT_EQ(seed_radius, 0.75);
  EXPECT_EQ(seed.response, "newer");
  EXPECT_EQ(manager.stats().flights_adapted, 1u);
}

TEST(SessionManagerTest, FindAdaptableSeedTouchKeepsTheHitWarmInTheLru) {
  // Cap of two: memoizing a third outcome evicts the LRU entry. The seed
  // hit must have touched its entry to the front, so the eviction falls on
  // the newer-but-untouched outcome instead.
  SessionManager manager(/*max_idle_engines=*/0, /*max_cached_results=*/2);
  manager.FinishFlight("k-old", SeedOutcome("fam", 0.04, "old"), true);
  manager.FinishFlight("k-new", SeedOutcome("fam", 0.08, "new"), true);

  FlightOutcome seed;
  double seed_radius = 0.0;
  // 0.03 selects the older entry (|0.01| beats |0.05|) and LRU-touches it.
  ASSERT_TRUE(manager.FindAdaptableSeed("fam", 0.03, &seed, &seed_radius));
  EXPECT_EQ(seed_radius, 0.04);

  manager.FinishFlight("k-third", SeedOutcome("other", 0.5, "third"), true);
  // Without the touch, 0.04 would be the entry that just got evicted.
  ASSERT_TRUE(manager.FindAdaptableSeed("fam", 0.07, &seed, &seed_radius));
  EXPECT_EQ(seed_radius, 0.04);
}

TEST(SessionManagerTest, AdaptFollowerPicksClosestInFlightRadius) {
  SessionManager manager(/*max_idle_engines=*/0);
  FlightOutcome cached;
  ASSERT_EQ(manager.JoinFlight("fa", nullptr, &cached, "fam", 0.25),
            FlightJoin::kLeader);

  // With a single in-flight candidate: no same-radius ride-along, no
  // cross-family ride-along.
  EXPECT_FALSE(
      manager.JoinAdaptFollower("fam", 0.25, [](const FlightOutcome&) {}));
  EXPECT_FALSE(
      manager.JoinAdaptFollower("other", 0.5, [](const FlightOutcome&) {}));

  // 0.375 rides the closest in-flight radius (0.25, not 1.0) and receives
  // that leader's outcome on completion.
  ASSERT_EQ(manager.JoinFlight("fb", nullptr, &cached, "fam", 1.0),
            FlightJoin::kLeader);
  std::string got;
  ASSERT_TRUE(manager.JoinAdaptFollower(
      "fam", 0.375, [&](const FlightOutcome& o) { got = o.response; }));
  EXPECT_EQ(manager.stats().flights_adapt_followed, 1u);
  manager.FinishFlight("fa", SeedOutcome("fam", 0.25, "lead-a"), false);
  EXPECT_EQ(got, "lead-a");
  manager.FinishFlight("fb", SeedOutcome("fam", 1.0, "lead-b"), false);
}

TEST(SessionManagerTest, AdaptFollowerTieBreaksTowardTheNewestLeader) {
  SessionManager manager(/*max_idle_engines=*/0);
  FlightOutcome cached;
  ASSERT_EQ(manager.JoinFlight("fa", nullptr, &cached, "fam", 0.25),
            FlightJoin::kLeader);
  ASSERT_EQ(manager.JoinFlight("fb", nullptr, &cached, "fam", 0.75),
            FlightJoin::kLeader);

  // 0.5 is (exactly) equidistant from both in-flight radii: the most
  // recently led flight wins, mirroring the memo's tie-break.
  std::string got;
  ASSERT_TRUE(manager.JoinAdaptFollower(
      "fam", 0.5, [&](const FlightOutcome& o) { got = o.response; }));
  manager.FinishFlight("fb", SeedOutcome("fam", 0.75, "lead-b"), false);
  EXPECT_EQ(got, "lead-b");

  // A retracted flight no longer matches: its outcome will be adapted, not
  // a seedable cold solve, so chaining onto it would only fall back cold.
  manager.RetractAdaptFlight("fa");
  EXPECT_FALSE(
      manager.JoinAdaptFollower("fam", 0.5, [](const FlightOutcome&) {}));
  manager.FinishFlight("fa", SeedOutcome("fam", 0.25, "lead-a"), false);
}

TEST(ServerAdaptTest, QueuedFlightAdoptsInFlightLeaderAcrossRequests) {
  // A DIVERSIFY adapt=true queued at r' while a same-family solve at r is
  // still *in flight* must not lead its own cold computation: it registers
  // as an adapt-follower, adopts the leader's capsule on completion, and
  // zooms to r' — byte-identical to the adopt-then-zoom chain run cold,
  // with exactly one computation on the follower's engine (the cold chain
  // costs two).
  auto server = StartServer();

  EngineConfig config = TestConfig(20000, 9);
  auto engine = DiscEngine::Create(config);
  ASSERT_TRUE(engine.ok());
  DiversifyRequest seed_request;
  seed_request.radius = 0.004;
  ASSERT_TRUE((*engine)->Diversify(seed_request).ok());
  ZoomRequest adapt_zoom;
  adapt_zoom.radius = 0.003;
  auto expected = (*engine)->Zoom(adapt_zoom);
  ASSERT_TRUE(expected.ok());

  LineClient leader = ConnectTo(*server);
  LineClient follower = ConnectTo(*server);
  MustRoundtrip(leader, "OPEN dataset=clustered n=20000 dim=2 seed=9");
  MustRoundtrip(follower, "OPEN dataset=clustered n=20000 dim=2 seed=9");

  // The leader's cold solve takes >100ms at this n (sanitizers only widen
  // the window); the follower's request lands well inside it.
  std::string leader_wire;
  std::thread leader_thread(
      [&] { leader_wire = MustRoundtrip(leader, "DIVERSIFY r=0.004"); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  std::string adapted =
      MustRoundtrip(follower, "DIVERSIFY r=0.003 adapt=true");
  leader_thread.join();

  EXPECT_NE(leader_wire.find("\"ok\":true"), std::string::npos)
      << leader_wire;
  EXPECT_EQ(adapted.rfind(AdaptedPrefix(*expected, 0.004), 0), 0u) << adapted;

  std::string stats = MustRoundtrip(follower, "STATS");
  EXPECT_EQ(ExtractUint(stats, "computations"), 1u) << stats;
  EXPECT_EQ(ExtractUint(stats, "coalesced"), 1u) << stats;

  SessionManagerStats manager = server->manager_stats();
  EXPECT_EQ(manager.flights_adapt_followed, 1u);
  EXPECT_EQ(manager.flights_adapted, 0u);  // never reached the memo path

  MustRoundtrip(leader, "CLOSE");
  MustRoundtrip(follower, "CLOSE");
}

// ---------------------------------------------------------------------------
// The HTTP/1.1 transport (ISSUE 7): same commands, same JSON bodies, one
// POST per command over a keep-alive connection (= one session).
// ---------------------------------------------------------------------------

HttpClient HttpConnectTo(const DiscServer& server) {
  auto client = HttpClient::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(client).value();
}

TEST(ServerHttpTest, HttpSessionMatchesDirectEngineByteForByte) {
  auto server = StartServer();

  auto engine = DiscEngine::Create(TestConfig());
  ASSERT_TRUE(engine.ok());
  DiversifyRequest diversify;
  diversify.radius = 0.1;
  auto expected = (*engine)->Diversify(diversify);
  ASSERT_TRUE(expected.ok());
  ZoomRequest zoom;
  zoom.radius = 0.05;
  auto expected_zoom = (*engine)->Zoom(zoom);
  ASSERT_TRUE(expected_zoom.ok());

  HttpClient client = HttpConnectTo(*server);
  auto open = client.Post("/open", "dataset=clustered n=400 dim=2 seed=9");
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_EQ(open->status, 200);
  EXPECT_NE(open->body.find("\"ok\":true"), std::string::npos) << open->body;
  EXPECT_NE(open->body.find("\"cmd\":\"OPEN\""), std::string::npos)
      << open->body;

  // The response body is exactly the protocol line plus its framing '\n',
  // so the replica-prefix comparison is the same as the line transport's.
  auto wire = client.Post("/diversify", "r=0.1");
  ASSERT_TRUE(wire.ok()) << wire.status().ToString();
  EXPECT_EQ(wire->status, 200);
  EXPECT_EQ(
      wire->body.rfind(DeterministicPrefix(Verb::kDiversify, *expected), 0),
      0u)
      << wire->body;
  ASSERT_FALSE(wire->body.empty());
  EXPECT_EQ(wire->body.back(), '\n');

  auto wire_zoom = client.Post("/zoom", "to=0.05");
  ASSERT_TRUE(wire_zoom.ok());
  EXPECT_EQ(wire_zoom->body.rfind(
                DeterministicPrefix(Verb::kZoom, *expected_zoom), 0),
            0u)
      << wire_zoom->body;

  // /stats is read-only and additionally accepts GET.
  auto stats = client.Get("/stats");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->status, 200);
  EXPECT_NE(stats->body.find("\"has_solution\":true"), std::string::npos)
      << stats->body;

  auto close = client.Post("/close", "");
  ASSERT_TRUE(close.ok());
  EXPECT_EQ(close->body, "{\"ok\":true,\"cmd\":\"CLOSE\"}\n");
  EXPECT_EQ(server->server_stats().http_requests, 5u);

  // Protocol detection is per connection: a line-protocol client works on
  // the same server, unchanged.
  LineClient line_client = ConnectTo(*server);
  std::string line_open =
      MustRoundtrip(line_client, "OPEN dataset=clustered n=400 dim=2 seed=9");
  EXPECT_NE(line_open.find("\"ok\":true"), std::string::npos) << line_open;
  MustRoundtrip(line_client, "CLOSE");
}

TEST(ServerHttpTest, ErrorCodesMapToHttpStatuses) {
  auto server = StartServer();
  HttpClient client = HttpConnectTo(*server);

  // FailedPrecondition (no session yet) -> 409.
  auto early = client.Post("/diversify", "r=0.1");
  ASSERT_TRUE(early.ok());
  EXPECT_EQ(early->status, 409);
  EXPECT_NE(early->body.find("\"code\":\"FailedPrecondition\""),
            std::string::npos)
      << early->body;

  // Unknown endpoint -> 404, still a protocol error line in the body.
  auto nope = client.Post("/nope", "");
  ASSERT_TRUE(nope.ok());
  EXPECT_EQ(nope->status, 404);
  EXPECT_NE(nope->body.find("\"ok\":false"), std::string::npos) << nope->body;

  // GET on a mutating endpoint -> 400 InvalidArgument.
  auto get = client.Get("/diversify");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get->status, 400);
  EXPECT_NE(get->body.find("requires POST"), std::string::npos) << get->body;

  // Command-level argument errors -> 400.
  auto bad = client.Post("/open", "dataset=nope");
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, 400);
  EXPECT_NE(bad->body.find("\"code\":\"InvalidArgument\""), std::string::npos)
      << bad->body;

  // Errors are per request, not connection state: the same keep-alive
  // connection opens a session afterwards.
  auto open = client.Post("/open", "dataset=uniform n=100 dim=2 seed=1");
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open->status, 200);
  auto close = client.Post("/close", "");
  ASSERT_TRUE(close.ok());
  EXPECT_EQ(close->status, 200);
}

TEST(ServerHttpTest, BusyRejectionIsA503WithRetryAfter) {
  ServerOptions options;
  options.port = 0;
  options.workers = 1;
  options.max_inflight = 1;
  options.max_pending = 0;  // one computation in the system, zero queued
  auto server_or = DiscServer::Start(std::move(options));
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  auto server = std::move(server_or).value();

  constexpr int kClients = 4;
  std::vector<HttpClient> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(HttpConnectTo(*server));
    auto open =
        clients.back().Post("/open", "dataset=clustered n=1500 dim=2 seed=21");
    ASSERT_TRUE(open.ok()) << open.status().ToString();
    ASSERT_EQ(open->status, 200) << open->body;
  }

  // Bursts of concurrent distinct-radius requests (nothing coalesces).
  // With a budget of one job, an overlapping burst must refuse the excess
  // with 503 + Retry-After; retry rounds guard against an unlucky burst
  // that happened to serialize.
  std::atomic<int> ok_count{0};
  std::atomic<int> busy_count{0};
  std::atomic<int> bad_count{0};
  for (int round = 0; round < 8 && busy_count.load() == 0; ++round) {
    std::latch start(kClients);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i, round] {
        char body[32];
        std::snprintf(body, sizeof(body), "r=%.4f",
                      0.03 + 0.002 * i + 0.0001 * round);
        start.arrive_and_wait();
        auto response = clients[i].Post("/diversify", body);
        if (!response.ok()) {
          bad_count.fetch_add(1);
          return;
        }
        if (response->status == 200) {
          ok_count.fetch_add(1);
        } else if (response->status == 503) {
          busy_count.fetch_add(1);
          EXPECT_NE(response->body.find("\"code\":\"Busy\""),
                    std::string::npos)
              << response->body;
          EXPECT_NE(response->head.find("Retry-After: 1"), std::string::npos)
              << response->head;
        } else {
          bad_count.fetch_add(1);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  EXPECT_EQ(bad_count.load(), 0);
  EXPECT_GE(ok_count.load(), 1) << "no burst admitted any computation";
  EXPECT_GE(busy_count.load(), 1) << "no burst produced a 503";
  EXPECT_GE(server->server_stats().busy_rejections, 1u);

  // 503 is per request: the connections still compute afterwards.
  for (int i = 0; i < kClients; ++i) {
    char body[32];
    std::snprintf(body, sizeof(body), "r=%.4f", 0.05 + 0.002 * i);
    auto response = clients[i].Post("/diversify", body);
    ASSERT_TRUE(response.ok());
    EXPECT_EQ(response->status, 200) << response->body;
    auto close = clients[i].Post("/close", "");
    ASSERT_TRUE(close.ok());
  }
}

// ---------------------------------------------------------------------------
// The BATCH envelope (the batch-first API): k commands, one unit, k
// responses in order — byte-identical to running the commands one at a
// time, with per-command error isolation and a planner that runs one cold
// solve per adapt family.
// ---------------------------------------------------------------------------

/// Ships one well-formed BATCH frame over the line transport and reads the
/// k response lines it owes.
std::vector<std::string> RunLineBatch(
    LineClient& client, const std::vector<std::string>& commands) {
  EXPECT_TRUE(
      client.SendLine("BATCH n=" + std::to_string(commands.size())).ok());
  for (const std::string& command : commands) {
    EXPECT_TRUE(client.SendLine(command).ok());
  }
  std::vector<std::string> responses;
  responses.reserve(commands.size());
  for (size_t i = 0; i < commands.size(); ++i) {
    auto line = client.RecvLine();
    EXPECT_TRUE(line.ok()) << "response " << i << ": "
                           << line.status().ToString();
    responses.push_back(line.ok() ? *line : "");
  }
  return responses;
}

/// Splits an HTTP /batch response body into its protocol lines.
std::vector<std::string> SplitResponseLines(const std::string& body) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < body.size()) {
    size_t end = body.find('\n', start);
    if (end == std::string::npos) end = body.size();
    lines.push_back(body.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

/// The transcript both byte-identity tests replay: a session that exercises
/// cold, adapted, zoom, stats, and close responses.
const std::vector<std::string>& BatchTranscript() {
  static const std::vector<std::string> commands = {
      "OPEN dataset=clustered n=400 dim=2 seed=9",
      "DIVERSIFY r=0.08",
      "DIVERSIFY r=0.05 adapt=true",
      "ZOOM to=0.03",
      "STATS",
      "CLOSE",
  };
  return commands;
}

/// Runs the transcript one command at a time on its own fresh server (so
/// pool and memo state match a fresh batch server) and returns the lines.
std::vector<std::string> SequentialReference(
    const std::vector<std::string>& commands) {
  auto server = StartServer();
  LineClient client = ConnectTo(*server);
  std::vector<std::string> responses;
  responses.reserve(commands.size());
  for (const std::string& command : commands) {
    responses.push_back(MustRoundtrip(client, command));
  }
  return responses;
}

TEST(ServerBatchTest, BatchMatchesSequentialExecutionByteForByte) {
  const std::vector<std::string>& commands = BatchTranscript();
  const std::vector<std::string> expected = SequentialReference(commands);

  auto server = StartServer();
  LineClient client = ConnectTo(*server);
  const std::vector<std::string> responses = RunLineBatch(client, commands);
  ASSERT_EQ(responses.size(), expected.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(StripWallMs(responses[i]), StripWallMs(expected[i]))
        << commands[i];
  }

  // The envelope is pure framing: the same connection keeps working in
  // plain lockstep afterwards.
  std::string open = MustRoundtrip(client, commands[0]);
  EXPECT_NE(open.find("\"ok\":true"), std::string::npos) << open;
}

TEST(ServerBatchTest, HttpBatchMatchesSequentialExecutionByteForByte) {
  const std::vector<std::string>& commands = BatchTranscript();
  const std::vector<std::string> expected = SequentialReference(commands);

  auto server = StartServer();
  HttpClient client = HttpConnectTo(*server);
  std::string body = "[";
  for (size_t i = 0; i < commands.size(); ++i) {
    if (i > 0) body += ",";
    body += "\"" + commands[i] + "\"";  // no quoting needed: plain ASCII
  }
  body += "]";
  auto response = client.Post("/batch", body);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 200) << response->body;
  ASSERT_FALSE(response->body.empty());
  EXPECT_EQ(response->body.back(), '\n');

  const std::vector<std::string> lines = SplitResponseLines(response->body);
  ASSERT_EQ(lines.size(), expected.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(StripWallMs(lines[i]), StripWallMs(expected[i])) << commands[i];
  }
}

TEST(ServerBatchTest, PlannerRunsOneColdSolvePerAdaptFamily) {
  auto server = StartServer();

  // Replica of the planner's contract: ONE cold solve at the first radius
  // of the family, every other member adapted from that anchor's capsule.
  auto engine = DiscEngine::Create(TestConfig());
  ASSERT_TRUE(engine.ok());
  DiversifyRequest anchor;
  anchor.radius = 0.08;
  auto cold = (*engine)->Diversify(anchor);
  ASSERT_TRUE(cold.ok());
  auto capsule = (*engine)->ExportSession();
  ZoomRequest to_005;
  to_005.radius = 0.05;
  auto adapted_005 = (*engine)->AdaptFrom(capsule, to_005);
  ASSERT_TRUE(adapted_005.ok());
  ZoomRequest to_006;
  to_006.radius = 0.06;
  auto adapted_006 = (*engine)->AdaptFrom(capsule, to_006);
  ASSERT_TRUE(adapted_006.ok());

  LineClient client = ConnectTo(*server);
  const std::vector<std::string> responses = RunLineBatch(
      client, {
                  "OPEN dataset=clustered n=400 dim=2 seed=9",
                  "DIVERSIFY r=0.08 adapt=true",
                  "DIVERSIFY r=0.05 adapt=true",
                  "DIVERSIFY r=0.06 adapt=true",
                  "STATS",
                  "CLOSE",
              });
  ASSERT_EQ(responses.size(), 6u);

  // The family's first member computes cold — no adapted fields...
  EXPECT_EQ(responses[1].rfind(DeterministicPrefix(Verb::kDiversify, *cold),
                               0),
            0u)
      << responses[1];
  EXPECT_EQ(responses[1].find("\"adapted\""), std::string::npos)
      << responses[1];

  // ...and every other member zooms from the 0.08 anchor (the memo keeps
  // only cold solves seedable, so both adapt from 0.08, not from each
  // other).
  EXPECT_EQ(responses[2].rfind(AdaptedPrefix(*adapted_005, 0.08), 0), 0u)
      << responses[2];
  EXPECT_EQ(responses[3].rfind(AdaptedPrefix(*adapted_006, 0.08), 0), 0u)
      << responses[3];

  // One cold solve + two zoom adaptations on the session's engine.
  EXPECT_EQ(ExtractUint(responses[4], "computations"), 3u) << responses[4];
  EXPECT_EQ(ExtractUint(responses[4], "coalesced"), 2u) << responses[4];
  EXPECT_EQ(server->manager_stats().flights_adapted, 2u);
}

TEST(ServerBatchTest, BatchIsolatesPerCommandErrors) {
  auto server = StartServer();
  LineClient client = ConnectTo(*server);
  const std::vector<std::string> responses = RunLineBatch(
      client, {
                  "OPEN dataset=clustered n=300 dim=2 seed=5",
                  "DIVERSIFY",  // missing r= — fails alone
                  "DIVERSIFY r=0.1",
                  "CLOSE",
              });
  ASSERT_EQ(responses.size(), 4u);
  EXPECT_NE(responses[0].find("\"ok\":true"), std::string::npos)
      << responses[0];
  EXPECT_NE(responses[1].find("\"ok\":false"), std::string::npos)
      << responses[1];
  EXPECT_NE(responses[1].find("\"code\":\"InvalidArgument\""),
            std::string::npos)
      << responses[1];
  EXPECT_NE(responses[2].find("\"ok\":true"), std::string::npos)
      << responses[2];
  EXPECT_EQ(responses[3], "{\"ok\":true,\"cmd\":\"CLOSE\"}");
}

TEST(ServerBatchTest, EnvelopeErrorsAnswerOneLineAndNestingIsRejected) {
  auto server = StartServer();
  LineClient client = ConnectTo(*server);

  // Envelope-level failures owe ONE line under cmd "BATCH" — no command
  // slots follow, and the connection stays usable.
  ASSERT_TRUE(client.SendLine("BATCH n=0").ok());
  auto zero = client.RecvLine();
  ASSERT_TRUE(zero.ok());
  EXPECT_NE(zero->find("\"cmd\":\"BATCH\""), std::string::npos) << *zero;
  EXPECT_NE(zero->find("\"code\":\"InvalidArgument\""), std::string::npos)
      << *zero;

  ASSERT_TRUE(client.SendLine("BATCH n=65").ok());
  auto oversize = client.RecvLine();
  ASSERT_TRUE(oversize.ok());
  EXPECT_NE(oversize->find("exceeds the limit"), std::string::npos)
      << *oversize;

  // A BATCH line *inside* a frame is a per-command error (the envelope is
  // framing, not a command), and a blank slot owes its response too — a
  // batch answers one line per slot, unlike the streaming blank-line skip.
  const std::vector<std::string> responses =
      RunLineBatch(client, {"BATCH n=2", "", "STATS"});
  ASSERT_EQ(responses.size(), 3u);
  EXPECT_NE(responses[0].find("cannot be nested"), std::string::npos)
      << responses[0];
  EXPECT_NE(responses[1].find("\"ok\":false"), std::string::npos)
      << responses[1];
  EXPECT_NE(responses[2].find("\"cmd\":\"STATS\""), std::string::npos)
      << responses[2];

  // Still a working lockstep connection afterwards.
  std::string open =
      MustRoundtrip(client, "OPEN dataset=uniform n=100 dim=2 seed=1");
  EXPECT_NE(open.find("\"ok\":true"), std::string::npos) << open;
}

TEST(ServerBatchTest, HttpBatchEnvelopeFailuresAnswerOneErrorLine) {
  auto server = StartServer();
  HttpClient client = HttpConnectTo(*server);

  auto bad_json = client.Post("/batch", "not json");
  ASSERT_TRUE(bad_json.ok());
  EXPECT_EQ(bad_json->status, 400) << bad_json->body;
  EXPECT_NE(bad_json->body.find("\"cmd\":\"BATCH\""), std::string::npos)
      << bad_json->body;

  auto empty = client.Post("/batch", "[]");
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(empty->status, 400) << empty->body;

  auto get = client.Get("/batch");
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(get->status, 400) << get->body;
  EXPECT_NE(get->body.find("requires POST"), std::string::npos) << get->body;

  // Error isolation holds over HTTP too: a bad middle command answers in
  // place, the envelope still succeeds with one line per slot.
  auto mixed = client.Post(
      "/batch",
      "[\"OPEN dataset=clustered n=300 dim=2 seed=5\",\"BOGUS\","
      "\"DIVERSIFY r=0.1\",\"CLOSE\"]");
  ASSERT_TRUE(mixed.ok());
  EXPECT_EQ(mixed->status, 200) << mixed->body;
  const std::vector<std::string> lines = SplitResponseLines(mixed->body);
  ASSERT_EQ(lines.size(), 4u) << mixed->body;
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"ok\":false"), std::string::npos) << lines[1];
  EXPECT_NE(lines[2].find("\"ok\":true"), std::string::npos) << lines[2];
  EXPECT_EQ(lines[3], "{\"ok\":true,\"cmd\":\"CLOSE\"}");
}

TEST(ServerTest, ShutdownDisconnectsClientsAndJoins) {
  auto server = StartServer();
  LineClient client = ConnectTo(*server);
  MustRoundtrip(client, "OPEN dataset=uniform n=80 dim=2 seed=1");
  server->Shutdown();
  // The in-flight connection is dropped; the next read sees EOF/reset.
  auto response = client.Roundtrip("STATS");
  EXPECT_FALSE(response.ok());
  server->Shutdown();  // idempotent
}

// ---------------------------------------------------------------------------
// The real daemon binary, driven by disc_client
// ---------------------------------------------------------------------------

#if defined(DISC_SERVE_PATH) && defined(DISC_CLIENT_PATH)

struct Daemon {
  pid_t pid = -1;
  int port = 0;
};

// Spawns disc_serve --port=0 and parses the "listening on host:port" line.
Daemon SpawnDaemon() {
  Daemon daemon;
  int out_pipe[2];
  if (pipe(out_pipe) != 0) return daemon;
  pid_t pid = fork();
  if (pid < 0) return daemon;
  if (pid == 0) {
    dup2(out_pipe[1], STDOUT_FILENO);
    close(out_pipe[0]);
    close(out_pipe[1]);
    execl(DISC_SERVE_PATH, DISC_SERVE_PATH, "--port=0", "--workers=2",
          static_cast<char*>(nullptr));
    _exit(127);
  }
  close(out_pipe[1]);
  std::string banner;
  char c;
  while (read(out_pipe[0], &c, 1) == 1 && c != '\n') banner += c;
  close(out_pipe[0]);
  size_t colon = banner.rfind(':');
  if (colon != std::string::npos) {
    daemon.pid = pid;
    daemon.port = std::atoi(banner.c_str() + colon + 1);
  }
  return daemon;
}

void StopDaemon(const Daemon& daemon) {
  if (daemon.pid <= 0) return;
  kill(daemon.pid, SIGTERM);
  int status = 0;
  waitpid(daemon.pid, &status, 0);
}

TEST(DaemonSmokeTest, TranscriptThroughDiscClient) {
  Daemon daemon = SpawnDaemon();
  ASSERT_GT(daemon.pid, 0);
  ASSERT_GT(daemon.port, 0);

  std::string cmd =
      std::string("printf 'OPEN dataset=clustered n=300 dim=2 seed=5\\n"
                  "DIVERSIFY r=0.1\\nZOOM to=0.05\\nSTATS\\nCLOSE\\n' | ") +
      DISC_CLIENT_PATH + " --port=" + std::to_string(daemon.port) + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  char buffer[512];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    output += buffer;
  }
  int exit_code = pclose(pipe);
  StopDaemon(daemon);

  EXPECT_EQ(WEXITSTATUS(exit_code), 0) << output;
  EXPECT_NE(output.find("\"cmd\":\"OPEN\""), std::string::npos) << output;
  EXPECT_NE(output.find("\"cmd\":\"DIVERSIFY\""), std::string::npos)
      << output;
  EXPECT_NE(output.find("\"cmd\":\"ZOOM\""), std::string::npos) << output;
  EXPECT_NE(output.find("\"has_solution\":true"), std::string::npos)
      << output;
  EXPECT_NE(output.find("\"cmd\":\"CLOSE\""), std::string::npos) << output;
  // Five commands, five responses, all ok.
  size_t ok_count = 0;
  for (size_t pos = output.find("\"ok\":true"); pos != std::string::npos;
       pos = output.find("\"ok\":true", pos + 1)) {
    ++ok_count;
  }
  EXPECT_EQ(ok_count, 5u) << output;
}

TEST(DaemonSmokeTest, HttpTranscriptThroughDiscClient) {
  Daemon daemon = SpawnDaemon();
  ASSERT_GT(daemon.pid, 0);
  ASSERT_GT(daemon.port, 0);

  // The same transcript as the line-protocol smoke test, sent with --http:
  // stdout must be the identical protocol JSON lines.
  std::string cmd =
      std::string("printf 'OPEN dataset=clustered n=300 dim=2 seed=5\\n"
                  "DIVERSIFY r=0.1\\nZOOM to=0.05\\nSTATS\\nCLOSE\\n' | ") +
      DISC_CLIENT_PATH + " --http --port=" + std::to_string(daemon.port) +
      " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  char buffer[512];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    output += buffer;
  }
  int exit_code = pclose(pipe);
  StopDaemon(daemon);

  EXPECT_EQ(WEXITSTATUS(exit_code), 0) << output;
  EXPECT_NE(output.find("\"cmd\":\"OPEN\""), std::string::npos) << output;
  EXPECT_NE(output.find("\"cmd\":\"DIVERSIFY\""), std::string::npos)
      << output;
  EXPECT_NE(output.find("\"cmd\":\"ZOOM\""), std::string::npos) << output;
  EXPECT_NE(output.find("\"has_solution\":true"), std::string::npos)
      << output;
  EXPECT_NE(output.find("\"cmd\":\"CLOSE\""), std::string::npos) << output;
  size_t ok_count = 0;
  for (size_t pos = output.find("\"ok\":true"); pos != std::string::npos;
       pos = output.find("\"ok\":true", pos + 1)) {
    ++ok_count;
  }
  EXPECT_EQ(ok_count, 5u) << output;
}

TEST(DaemonSmokeTest, BatchTranscriptMatchesSequentialThroughDiscClient) {
  // The --batch contract: stdout is byte-identical to running the same
  // commands without --batch. Two fresh daemons, so both runs see identical
  // pool/memo state; only the machine-dependent wall_ms field may differ.
  const char* transcript =
      "OPEN dataset=clustered n=300 dim=2 seed=5\\n"
      "DIVERSIFY r=0.1\\nDIVERSIFY r=0.07 adapt=true\\n"
      "ZOOM to=0.05\\nSTATS\\nCLOSE\\n";
  auto run = [&](const Daemon& daemon, const char* extra_flags,
                 int* exit_code) {
    std::string cmd = std::string("printf '") + transcript + "' | " +
                      DISC_CLIENT_PATH + extra_flags +
                      " --port=" + std::to_string(daemon.port) +
                      " 2>/dev/null";
    FILE* pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    std::string output;
    char buffer[512];
    while (pipe != nullptr &&
           std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
      output += buffer;
    }
    *exit_code = pipe != nullptr ? pclose(pipe) : -1;
    return output;
  };

  Daemon sequential_daemon = SpawnDaemon();
  Daemon batch_daemon = SpawnDaemon();
  ASSERT_GT(sequential_daemon.port, 0);
  ASSERT_GT(batch_daemon.port, 0);
  int sequential_exit = 0;
  int batch_exit = 0;
  const std::string sequential = run(sequential_daemon, "", &sequential_exit);
  const std::string batched = run(batch_daemon, " --batch", &batch_exit);
  StopDaemon(sequential_daemon);
  StopDaemon(batch_daemon);

  EXPECT_EQ(WEXITSTATUS(sequential_exit), 0) << sequential;
  EXPECT_EQ(WEXITSTATUS(batch_exit), 0) << batched;
  const std::vector<std::string> expected = SplitResponseLines(sequential);
  const std::vector<std::string> lines = SplitResponseLines(batched);
  ASSERT_EQ(expected.size(), 6u) << sequential;
  ASSERT_EQ(lines.size(), expected.size()) << batched;
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(StripWallMs(lines[i]), StripWallMs(expected[i])) << i;
  }
}

TEST(DaemonSmokeTest, DaemonServesConcurrentClients) {
  Daemon daemon = SpawnDaemon();
  ASSERT_GT(daemon.pid, 0);
  ASSERT_GT(daemon.port, 0);

  std::vector<std::thread> threads;
  std::vector<int> ok(4, 0);  // not vector<bool>: threads write elements
  for (size_t i = 0; i < 4; ++i) {
    threads.emplace_back([&, i] {
      auto client = LineClient::Connect("127.0.0.1", daemon.port);
      if (!client.ok()) return;
      auto open = client->Roundtrip("OPEN dataset=uniform n=150 dim=2 seed=" +
                                    std::to_string(i));
      auto wire = client->Roundtrip("DIVERSIFY r=0.2");
      ok[i] = open.ok() && wire.ok() &&
              wire->find("\"ok\":true") != std::string::npos;
    });
  }
  for (std::thread& thread : threads) thread.join();
  StopDaemon(daemon);
  for (size_t i = 0; i < 4; ++i) EXPECT_TRUE(ok[i]) << "client " << i;
}

#endif  // DISC_SERVE_PATH && DISC_CLIENT_PATH

}  // namespace
}  // namespace disc
