// End-to-end smoke test for the disc_cli example binary.
//
// Drives the CLI the way a user would — generate a tiny dataset, diversify,
// zoom, write a CSV — and asserts that a verified r-DisC subset is reported.
// The binary path is injected by CMake as DISC_CLI_PATH; the test is only
// registered when the examples are built.

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#ifndef DISC_CLI_PATH
#error "DISC_CLI_PATH must be defined to the disc_cli binary location"
#endif

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult RunCli(const std::string& args) {
  CommandResult result;
  std::string cmd = std::string(DISC_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[512];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.output += buffer;
  }
  int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

// Extracts the integer following `key` in the CLI's table output,
// e.g. "solution size  15".
long ExtractCount(const std::string& output, const std::string& key) {
  size_t pos = output.find(key);
  if (pos == std::string::npos) return -1;
  pos += key.size();
  while (pos < output.size() && output[pos] == ' ') ++pos;
  return std::strtol(output.c_str() + pos, nullptr, 10);
}

TEST(DiscCliSmokeTest, TinyDatasetYieldsVerifiedSubset) {
  CommandResult r =
      RunCli("--dataset=clustered --n=200 --dim=2 --seed=7 --radius=0.1");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("verified"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("OK"), std::string::npos) << r.output;

  long size = ExtractCount(r.output, "solution size");
  EXPECT_GT(size, 0) << r.output;
  EXPECT_LE(size, 200) << r.output;
}

TEST(DiscCliSmokeTest, EveryAlgorithmVariantVerifies) {
  for (const char* algo : {"basic", "greedy", "lazy-grey", "lazy-white",
                           "greedy-c", "fast-c"}) {
    CommandResult r = RunCli(std::string("--dataset=uniform --n=150 --dim=2 "
                                      "--seed=11 --radius=0.15 --algorithm=") +
                          algo);
    EXPECT_EQ(r.exit_code, 0) << "algorithm " << algo << ":\n" << r.output;
    EXPECT_NE(r.output.find("OK"), std::string::npos)
        << "algorithm " << algo << ":\n" << r.output;
  }
}

TEST(DiscCliSmokeTest, BulkLoadedIndexYieldsSameVerifiedSubset) {
  const std::string workload = "--dataset=clustered --n=200 --dim=2 --seed=7 "
                               "--radius=0.1 --algorithm=greedy";
  CommandResult insert = RunCli(workload + " --build=insert");
  CommandResult bulk = RunCli(workload + " --build=bulk");
  ASSERT_EQ(insert.exit_code, 0) << insert.output;
  ASSERT_EQ(bulk.exit_code, 0) << bulk.output;
  EXPECT_NE(bulk.output.find("bulk"), std::string::npos) << bulk.output;
  // Greedy-DisC is deterministic in the neighborhood structure, so the two
  // index shapes must report identical solution sizes (both verified).
  EXPECT_EQ(ExtractCount(insert.output, "solution size"),
            ExtractCount(bulk.output, "solution size"))
      << bulk.output;
}

TEST(DiscCliSmokeTest, RejectsUnknownBuildStrategy) {
  CommandResult r = RunCli("--dataset=uniform --n=50 --build=magic");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("unknown build strategy"), std::string::npos)
      << r.output;
}

TEST(DiscCliSmokeTest, ZoomInReportsVerifiedSolution) {
  CommandResult r = RunCli(
      "--dataset=clustered --n=200 --dim=2 --seed=7 --radius=0.1 "
      "--zoom-to=0.05");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("After zooming"), std::string::npos) << r.output;

  // The zoom table repeats the "verified" row; both must say OK.
  size_t first = r.output.find("verified");
  ASSERT_NE(first, std::string::npos) << r.output;
  size_t second = r.output.find("verified", first + 1);
  ASSERT_NE(second, std::string::npos) << r.output;
  EXPECT_NE(r.output.find("OK", second), std::string::npos) << r.output;
}

TEST(DiscCliSmokeTest, WritesSelectionCsv) {
  std::string csv_path =
      ::testing::TempDir() + "/disc_cli_smoke_points.csv";
  std::remove(csv_path.c_str());
  CommandResult r = RunCli(
      "--dataset=uniform --n=100 --dim=2 --seed=3 --radius=0.2 --out=" +
      csv_path);
  ASSERT_EQ(r.exit_code, 0) << r.output;

  // The CSV is headerless (LoadPointsCsv round-trips every row as data):
  // one row per object, coordinates first, then the 0/1 selection marker.
  std::ifstream csv(csv_path);
  ASSERT_TRUE(csv.good()) << "CSV not written to " << csv_path;
  size_t rows = 0;
  size_t selected = 0;
  for (std::string line; std::getline(csv, line);) {
    if (line.empty()) continue;
    ++rows;
    ASSERT_EQ(std::count(line.begin(), line.end(), ','), 2) << line;
    std::string marker = line.substr(line.rfind(',') + 1);
    ASSERT_TRUE(marker == "0" || marker == "1") << line;
    if (marker == "1") ++selected;
  }
  EXPECT_EQ(rows, 100u);
  EXPECT_GT(selected, 0u);
  EXPECT_LT(selected, 100u);
  std::remove(csv_path.c_str());
}

TEST(DiscCliSmokeTest, RejectsUnknownAlgorithm) {
  CommandResult r =
      RunCli("--dataset=uniform --n=50 --algorithm=does-not-exist");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("unknown algorithm"), std::string::npos) << r.output;
}

TEST(DiscCliSmokeTest, LshBackendYieldsAVerifiedSubset) {
  CommandResult r = RunCli(
      "--dataset=clustered --n=500 --dim=2 --seed=7 --radius=0.1 "
      "--neighbor-backend=lsh --algorithm=greedy");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("OK"), std::string::npos) << r.output;
  long size = ExtractCount(r.output, "solution size");
  EXPECT_GT(size, 0) << r.output;
}

TEST(DiscCliSmokeTest, ShardedBackendMatchesTheExactSolutionSize) {
  const std::string workload = "--dataset=clustered --n=400 --dim=2 --seed=7 "
                               "--radius=0.1 --algorithm=greedy";
  CommandResult exact = RunCli(workload);
  CommandResult sharded = RunCli(workload + " --neighbor-backend=sharded");
  ASSERT_EQ(exact.exit_code, 0) << exact.output;
  ASSERT_EQ(sharded.exit_code, 0) << sharded.output;
  // Exact shards reproduce the neighborhood structure exactly, so the two
  // engine modes report the same (verified) solution size.
  EXPECT_EQ(ExtractCount(exact.output, "solution size"),
            ExtractCount(sharded.output, "solution size"))
      << sharded.output;
}

TEST(DiscCliSmokeTest, RejectsUnknownNeighborBackendWithUsage) {
  // The same contract as an unknown flag: usage error, exit 2, never a
  // silent fall-back to the default backend.
  CommandResult r =
      RunCli("--dataset=uniform --n=50 --neighbor-backend=bogus");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown neighbor backend 'bogus'"),
            std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST(DiscCliSmokeTest, ZoomWithGraphModeBackendFailsCleanly) {
  CommandResult r = RunCli(
      "--dataset=clustered --n=300 --dim=2 --seed=7 --radius=0.1 "
      "--neighbor-backend=lsh --zoom-to=0.05");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("FailedPrecondition"), std::string::npos)
      << r.output;
}

TEST(DiscCliSmokeTest, RejectsUnknownFlagWithUsage) {
  CommandResult r = RunCli("--dataset=uniform --n=50 --no-such-flag=1");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown flag '--no-such-flag'"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST(DiscCliSmokeTest, HelpPrintsUsage) {
  CommandResult r = RunCli("--help");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("usage:"), std::string::npos) << r.output;
}

TEST(DiscCliSmokeTest, EqualZoomRadiusIsANoOp) {
  CommandResult r = RunCli(
      "--dataset=clustered --n=200 --dim=2 --seed=7 --radius=0.1 "
      "--zoom-to=0.1");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("nothing to adapt"), std::string::npos) << r.output;
}

TEST(DiscCliSmokeTest, ZoomAfterCoveringAlgorithmFailsCleanly) {
  CommandResult r = RunCli(
      "--dataset=uniform --n=100 --seed=5 --radius=0.15 "
      "--algorithm=greedy-c --zoom-to=0.08");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("FailedPrecondition"), std::string::npos)
      << r.output;
}

}  // namespace
