// Quickstart: the minimal end-to-end DisC diversity workflow, driven
// entirely through the DiscEngine façade.
//
//   1. Describe the session: dataset source, metric, index strategy.
//   2. Create the engine (loads the data and builds the M-tree once).
//   3. Diversify at radius r; the response carries the solution, the index
//      cost, and the Definition-1 verification.
//   4. Zoom in for a finer view and back out for a coarser one — the engine
//      adapts the existing solution instead of recomputing from scratch.
//
// Build & run:  ./build/quickstart

#include <cstdio>

#include "engine/engine.h"

int main() {
  using namespace disc;

  // 1-2. A query result: 5000 clustered points in [0,1]^2, indexed once.
  EngineConfig config;
  config.dataset = DatasetSpec::Clustered(5000, 2, /*seed=*/2024);
  auto engine_or = DiscEngine::Create(std::move(config));
  if (!engine_or.ok()) {
    std::fprintf(stderr, "engine creation failed: %s\n",
                 engine_or.status().ToString().c_str());
    return 1;
  }
  DiscEngine& engine = **engine_or;

  // 3. Diversify at radius r: every object will have a representative within
  //    r, and representatives are pairwise farther than r apart.
  const double r = 0.05;
  DiversifyRequest request;
  request.radius = r;
  request.compute_quality = true;
  auto result = engine.Diversify(request);
  if (!result.ok()) {
    std::fprintf(stderr, "diversify failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("Greedy-DisC at r=%.2f selected %zu of %zu objects\n", r,
              result->size(), engine.dataset().size());
  std::printf("  cost: %llu node accesses, %llu range queries, %.1f ms\n",
              static_cast<unsigned long long>(result->stats.node_accesses),
              static_cast<unsigned long long>(result->stats.range_queries),
              result->wall_ms);
  Status valid = result->quality->verification;
  std::printf("  verification: %s\n", valid.ToString().c_str());

  // 4a. Zoom in: more, finer-grained representatives; the ones already shown
  //     to the user are all kept (S^r ⊆ S^r'). The engine recomputes the
  //     closest-black distances the pruned run left stale (§5.2) on its own.
  ZoomRequest finer;
  finer.radius = r / 2;
  auto zoom_in = engine.Zoom(finer);
  if (!zoom_in.ok()) {
    std::fprintf(stderr, "zoom-in failed: %s\n",
                 zoom_in.status().ToString().c_str());
    return 1;
  }
  std::printf("Zoom-in  to r=%.3f: %zu objects (%llu node accesses)\n", r / 2,
              zoom_in->size(),
              static_cast<unsigned long long>(zoom_in->stats.node_accesses));

  // 4b. Zoom out: fewer, more dissimilar representatives.
  ZoomRequest coarser;
  coarser.radius = r;
  auto zoom_out = engine.Zoom(coarser);
  if (!zoom_out.ok()) {
    std::fprintf(stderr, "zoom-out failed: %s\n",
                 zoom_out.status().ToString().c_str());
    return 1;
  }
  std::printf("Zoom-out to r=%.3f: %zu objects (%llu node accesses)\n", r,
              zoom_out->size(),
              static_cast<unsigned long long>(zoom_out->stats.node_accesses));

  return valid.ok() ? 0 : 1;
}
