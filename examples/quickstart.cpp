// Quickstart: the minimal end-to-end DisC diversity workflow.
//
//   1. Obtain a query result set P (here: a synthetic clustered dataset).
//   2. Index it with an M-tree.
//   3. Compute an r-DisC diverse subset with Greedy-DisC.
//   4. Verify the Definition-1 guarantees and inspect the cost counters.
//   5. Zoom in for a finer view and zoom out for a coarser one.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/disc_algorithms.h"
#include "core/zoom.h"
#include "data/generators.h"
#include "graph/properties.h"
#include "metric/metric.h"
#include "mtree/mtree.h"

int main() {
  using namespace disc;

  // 1. A query result: 5000 clustered points in [0,1]^2.
  Dataset dataset = MakeClusteredDataset(5000, 2, /*seed=*/2024);
  EuclideanMetric metric;

  // 2. Index it. The M-tree drives all neighbor computations and counts
  //    node accesses, the paper's cost metric.
  MTree tree(dataset, metric);
  if (Status s = tree.Build(); !s.ok()) {
    std::fprintf(stderr, "building M-tree failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 3. Diversify at radius r: every object will have a representative within
  //    r, and representatives are pairwise farther than r apart.
  const double r = 0.05;
  DiscResult result = GreedyDisc(&tree, r, {});
  std::printf("Greedy-DisC at r=%.2f selected %zu of %zu objects\n", r,
              result.size(), dataset.size());
  std::printf("  cost: %llu node accesses, %llu range queries, %.1f ms\n",
              static_cast<unsigned long long>(result.stats.node_accesses),
              static_cast<unsigned long long>(result.stats.range_queries),
              result.wall_ms);

  // 4. Verify the DisC guarantees (coverage + dissimilarity).
  Status valid = VerifyDisCDiverse(dataset, metric, r, result.solution);
  std::printf("  verification: %s\n", valid.ToString().c_str());

  // 5a. Zoom in: more, finer-grained representatives; the ones already shown
  //     to the user are all kept (S^r ⊆ S^r').
  tree.RecomputeClosestBlackDistances(r);
  DiscResult finer = ZoomIn(&tree, r / 2, /*greedy=*/true);
  std::printf("Zoom-in  to r=%.3f: %zu objects (%llu node accesses)\n", r / 2,
              finer.size(),
              static_cast<unsigned long long>(finer.stats.node_accesses));

  // 5b. Zoom out: fewer, more dissimilar representatives.
  DiscResult coarser = ZoomOut(&tree, r, ZoomOutVariant::kGreedyMostRed);
  std::printf("Zoom-out to r=%.3f: %zu objects (%llu node accesses)\n", r,
              coarser.size(),
              static_cast<unsigned long long>(coarser.stats.node_accesses));

  return valid.ok() ? 0 : 1;
}
