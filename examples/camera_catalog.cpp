// Figure 2 scenario: diversifying a categorical product catalog.
//
// The cameras dataset has 7 categorical attributes compared with Hamming
// distance. A DisC diverse subset at r = 3 is a compact "browse page" where
// every camera in the catalog differs from some shown camera in at most 3
// attributes, and shown cameras differ pairwise in more than 3. Local
// zooming around one camera then reveals similar models — the paper's
// "zooming in a specific camera" interaction.

#include <cstdio>

#include "core/disc_algorithms.h"
#include "core/zoom.h"
#include "data/cameras.h"
#include "graph/properties.h"
#include "metric/metric.h"
#include "mtree/mtree.h"

namespace {

void PrintCamera(const disc::Dataset& cameras, disc::ObjectId id) {
  std::printf("  #%-4u %-28s", id, cameras.label(id).c_str());
  for (size_t a = 2; a < disc::kCamerasAttributes; ++a) {
    std::printf(" %s=%s", cameras.attribute_names()[a].c_str(),
                disc::CameraAttributeValue(cameras, id, a).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace disc;

  Dataset cameras = MakeCamerasDataset();
  HammingMetric metric;
  MTree tree(cameras, metric);
  if (Status s = tree.Build(); !s.ok()) {
    std::fprintf(stderr, "M-tree build failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const double r = 3.0;
  DiscResult page = GreedyDisc(&tree, r, {});
  std::printf("Diverse camera page at Hamming radius %.0f: %zu of %zu\n", r,
              page.size(), cameras.size());
  size_t shown = 0;
  for (ObjectId id : page.solution) {
    PrintCamera(cameras, id);
    if (++shown == 10) {
      std::printf("  ... (%zu more)\n", page.size() - shown);
      break;
    }
  }

  Status valid = VerifyDisCDiverse(cameras, metric, r, page.solution);
  std::printf("verification: %s\n", valid.ToString().c_str());

  // Local zoom-in on the first shown camera: r' = 2 within its Hamming-3
  // neighborhood surfaces the similar models hidden behind it (Figure 2).
  tree.RecomputeClosestBlackDistances(r);
  ObjectId focus = page.solution.front();
  std::printf("\nZooming into camera #%u (%s): similar models\n", focus,
              cameras.label(focus).c_str());
  DiscResult local = LocalZoom(&tree, focus, r, 2.0, /*greedy=*/true);
  size_t revealed = 0;
  for (ObjectId id : local.solution) {
    if (metric.Distance(cameras.point(id), cameras.point(focus)) <= r) {
      PrintCamera(cameras, id);
      ++revealed;
    }
  }
  std::printf("local zoom revealed %zu representatives in the neighborhood\n",
              revealed);
  return valid.ok() ? 0 : 1;
}
