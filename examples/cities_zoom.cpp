// Figure 1 scenario: interactive exploration of a geographic dataset,
// driven as one DiscEngine session.
//
// Computes an initial DisC diverse "map" of the (synthetic) Greek cities
// dataset, then demonstrates the three adaptive operations of §3:
// zooming-in (finer map), zooming-out (coarser map), and local zooming
// around one selected city. Returning to the initial view between panels is
// a cache hit — the engine restores the stored solution state instead of
// re-running the algorithm. Each step writes a CSV (x, y, selected) so the
// four panels of Figure 1 can be re-plotted from the output files.
//
// Usage: cities_zoom [output_dir]   (default output dir: current directory)

#include <cstdio>
#include <string>

#include "data/dataset.h"
#include "engine/engine.h"
#include "eval/quality.h"

namespace {

void Report(const char* panel, const disc::DiversifyResponse& result,
            const disc::Dataset& dataset, const std::string& csv_path) {
  std::printf("%-28s %5zu cities shown  (%llu node accesses%s)\n", panel,
              result.size(),
              static_cast<unsigned long long>(result.stats.node_accesses),
              result.from_cache ? ", cached" : "");
  disc::Status s = disc::SavePointsCsv(csv_path, dataset, &result.solution);
  if (!s.ok()) {
    std::fprintf(stderr, "  warning: %s\n", s.ToString().c_str());
  } else {
    std::printf("  wrote %s\n", csv_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace disc;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  EngineConfig config;
  config.dataset = DatasetSpec::Cities();
  auto engine_or = DiscEngine::Create(std::move(config));
  if (!engine_or.ok()) {
    std::fprintf(stderr, "engine creation failed: %s\n",
                 engine_or.status().ToString().c_str());
    return 1;
  }
  DiscEngine& engine = **engine_or;
  const Dataset& cities = engine.dataset();

  // Panel (a): initial diverse map at r = 0.02.
  DiversifyRequest initial_request;
  initial_request.radius = 0.02;
  initial_request.compute_quality = true;
  auto initial = engine.Diversify(initial_request);
  if (!initial.ok()) {
    std::fprintf(stderr, "%s\n", initial.status().ToString().c_str());
    return 1;
  }
  Report("(a) initial r=0.02", *initial, cities,
         out_dir + "/fig1a_initial.csv");

  // Panel (b): zooming-in to r = 0.01 — all previous cities remain.
  ZoomRequest zoom_in_request;
  zoom_in_request.radius = 0.01;
  zoom_in_request.compute_quality = true;
  auto zoom_in = engine.Zoom(zoom_in_request);
  if (!zoom_in.ok()) {
    std::fprintf(stderr, "%s\n", zoom_in.status().ToString().c_str());
    return 1;
  }
  Report("(b) zoom-in r=0.01", *zoom_in, cities, out_dir + "/fig1b_in.csv");
  std::printf("  kept all %zu initial cities: %s\n", initial->size(),
              JaccardDistance(initial->solution, zoom_in->solution) < 1.0
                  ? "yes (superset)"
                  : "no");

  // Panel (c): zooming-out to r = 0.04 from the initial view. Re-requesting
  // the initial view is a cache hit that restores its solution state.
  auto again = engine.Diversify(initial_request);
  if (!again.ok()) {
    std::fprintf(stderr, "%s\n", again.status().ToString().c_str());
    return 1;
  }
  ZoomRequest zoom_out_request;
  zoom_out_request.radius = 0.04;
  zoom_out_request.compute_quality = true;
  auto zoom_out = engine.Zoom(zoom_out_request);
  if (!zoom_out.ok()) {
    std::fprintf(stderr, "%s\n", zoom_out.status().ToString().c_str());
    return 1;
  }
  Report("(c) zoom-out r=0.04", *zoom_out, cities, out_dir + "/fig1c_out.csv");

  // Panel (d): local zoom-in around the first selected city, again from the
  // cached initial view.
  auto base = engine.Diversify(initial_request);
  if (!base.ok()) {
    std::fprintf(stderr, "%s\n", base.status().ToString().c_str());
    return 1;
  }
  ObjectId focus = base->solution.front();
  ZoomRequest local_request;
  local_request.radius = 0.005;
  local_request.center = focus;
  auto local = engine.Zoom(local_request);
  if (!local.ok()) {
    std::fprintf(stderr, "%s\n", local.status().ToString().c_str());
    return 1;
  }
  std::printf("(d) local zoom-in around city %u (%.3f, %.3f)\n", focus,
              cities.point(focus)[0], cities.point(focus)[1]);
  Report("    local r'=0.005", *local, cities, out_dir + "/fig1d_local.csv");

  // All three single-radius maps must satisfy their DisC guarantees.
  Status a = base->quality->verification;
  Status b = zoom_in->quality->verification;
  Status c = zoom_out->quality->verification;
  std::printf("verification: (a) %s  (b) %s  (c) %s\n", a.ToString().c_str(),
              b.ToString().c_str(), c.ToString().c_str());
  return (a.ok() && b.ok() && c.ok()) ? 0 : 1;
}
