// Figure 1 scenario: interactive exploration of a geographic dataset.
//
// Computes an initial DisC diverse "map" of the (synthetic) Greek cities
// dataset, then demonstrates the three adaptive operations of §3:
// zooming-in (finer map), zooming-out (coarser map), and local zooming
// around one selected city. Each step writes a CSV (x, y, selected) so the
// four panels of Figure 1 can be re-plotted from the output files.
//
// Usage: cities_zoom [output_dir]   (default output dir: current directory)

#include <cstdio>
#include <string>

#include "core/disc_algorithms.h"
#include "core/zoom.h"
#include "data/cities.h"
#include "eval/quality.h"
#include "graph/properties.h"
#include "metric/metric.h"
#include "mtree/mtree.h"

namespace {

void Report(const char* panel, const disc::DiscResult& result,
            const disc::Dataset& dataset, const std::string& csv_path) {
  std::printf("%-28s %5zu cities shown  (%llu node accesses)\n", panel,
              result.size(),
              static_cast<unsigned long long>(result.stats.node_accesses));
  disc::Status s = disc::SavePointsCsv(csv_path, dataset, &result.solution);
  if (!s.ok()) {
    std::fprintf(stderr, "  warning: %s\n", s.ToString().c_str());
  } else {
    std::printf("  wrote %s\n", csv_path.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace disc;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  Dataset cities = MakeCitiesDataset();
  EuclideanMetric metric;
  MTree tree(cities, metric);
  if (Status s = tree.Build(); !s.ok()) {
    std::fprintf(stderr, "M-tree build failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Panel (a): initial diverse map at r = 0.02.
  const double r = 0.02;
  DiscResult initial = GreedyDisc(&tree, r, {});
  Report("(a) initial r=0.02", initial, cities,
         out_dir + "/fig1a_initial.csv");
  tree.RecomputeClosestBlackDistances(r);

  // Panel (b): zooming-in to r = 0.01 — all previous cities remain.
  DiscResult zoom_in = ZoomIn(&tree, 0.01, /*greedy=*/true);
  Report("(b) zoom-in r=0.01", zoom_in, cities, out_dir + "/fig1b_in.csv");
  std::printf("  kept all %zu initial cities: %s\n", initial.size(),
              JaccardDistance(initial.solution, zoom_in.solution) < 1.0
                  ? "yes (superset)"
                  : "no");

  // Panel (c): zooming-out to r = 0.04 from the initial view. Rebuild the
  // initial state first (the tree currently holds the zoomed-in coloring).
  DiscResult again = GreedyDisc(&tree, r, {});
  (void)again;
  DiscResult zoom_out = ZoomOut(&tree, 0.04, ZoomOutVariant::kGreedyMostRed);
  Report("(c) zoom-out r=0.04", zoom_out, cities, out_dir + "/fig1c_out.csv");

  // Panel (d): local zoom-in around the first selected city.
  DiscResult base = GreedyDisc(&tree, r, {});
  tree.RecomputeClosestBlackDistances(r);
  ObjectId focus = base.solution.front();
  DiscResult local = LocalZoom(&tree, focus, r, 0.005, /*greedy=*/true);
  std::printf("(d) local zoom-in around city %u (%.3f, %.3f)\n", focus,
              cities.point(focus)[0], cities.point(focus)[1]);
  Report("    local r'=0.005", local, cities, out_dir + "/fig1d_local.csv");

  // All four maps must satisfy their DisC guarantees.
  Status a = VerifyDisCDiverse(cities, metric, r, base.solution);
  Status b = VerifyDisCDiverse(cities, metric, 0.01, zoom_in.solution);
  Status c = VerifyDisCDiverse(cities, metric, 0.04, zoom_out.solution);
  std::printf("verification: (a) %s  (b) %s  (c) %s\n", a.ToString().c_str(),
              b.ToString().c_str(), c.ToString().c_str());
  return (a.ok() && b.ok() && c.ok()) ? 0 : 1;
}
