// §8 (future work) scenario: integrating relevance with DisC diversity.
//
// Simulates a query whose results carry relevance scores (distance to a
// query point) and demonstrates both §8 proposals implemented in this
// library:
//   1. Weighted DisC — valid DisC subsets biased toward relevant objects.
//   2. Multi-radius DisC — relevant objects get a smaller radius, so the
//      area near the query is represented in finer detail.

#include <cmath>
#include <cstdio>

#include "core/weighted.h"
#include "data/generators.h"
#include "eval/table.h"
#include "graph/properties.h"
#include "metric/metric.h"

int main() {
  using namespace disc;

  Dataset dataset = MakeClusteredDataset(1500, 2, /*seed=*/99);
  EuclideanMetric metric;

  // Relevance: decays with distance from an imaginary query point.
  const Point query{0.3, 0.6};
  std::vector<double> relevance(dataset.size());
  std::vector<double> weights(dataset.size());
  for (ObjectId i = 0; i < dataset.size(); ++i) {
    double d = metric.Distance(dataset.point(i), query);
    relevance[i] = std::exp(-3.0 * d);
    weights[i] = 0.05 + relevance[i];
  }

  const double radius = 0.08;

  // --- 1. Weighted DisC ---------------------------------------------------
  auto plain = GreedyWeightedDisc(dataset, metric, radius,
                                  std::vector<double>(dataset.size(), 1.0),
                                  WeightedObjective::kMaxWeight);
  auto max_weight = GreedyWeightedDisc(dataset, metric, radius, weights,
                                       WeightedObjective::kMaxWeight);
  auto balanced = GreedyWeightedDisc(dataset, metric, radius, weights,
                                     WeightedObjective::kWeightTimesCoverage);
  if (!plain.ok() || !max_weight.ok() || !balanced.ok()) {
    std::fprintf(stderr, "weighted DisC failed\n");
    return 1;
  }
  TablePrinter table("Weighted DisC at r=" + FormatDouble(radius, 3));
  table.SetHeader(
      {"variant", "size", "total-relevance", "relevance/object", "valid"});
  auto add = [&](const char* name, const std::vector<ObjectId>& set) {
    double total = TotalWeight(set, relevance);
    table.AddRow({name, std::to_string(set.size()), FormatDouble(total, 5),
                  FormatDouble(set.empty() ? 0.0 : total / set.size(), 4),
                  VerifyDisCDiverse(dataset, metric, radius, set).ok()
                      ? "yes"
                      : "NO"});
  };
  add("uniform weights", *plain);
  add("max-weight", *max_weight);
  add("weight x coverage", *balanced);
  table.Print();

  // --- 2. Multi-radius DisC -----------------------------------------------
  auto radii = RelevanceRadii(relevance, 0.04, 0.16);
  if (!radii.ok()) {
    std::fprintf(stderr, "%s\n", radii.status().ToString().c_str());
    return 1;
  }
  auto multi = MultiRadiusDisc(dataset, metric, *radii, relevance);
  if (!multi.ok()) {
    std::fprintf(stderr, "%s\n", multi.status().ToString().c_str());
    return 1;
  }

  // Representation density near vs far from the query.
  size_t near_reps = 0, far_reps = 0, near_total = 0, far_total = 0;
  for (ObjectId i = 0; i < dataset.size(); ++i) {
    bool near = metric.Distance(dataset.point(i), query) < 0.3;
    (near ? near_total : far_total)++;
  }
  for (ObjectId s : *multi) {
    bool near = metric.Distance(dataset.point(s), query) < 0.3;
    (near ? near_reps : far_reps)++;
  }
  std::printf("\nMulti-radius DisC: %zu representatives\n", multi->size());
  std::printf(
      "  near the query (<0.3): %zu reps for %zu objects (1 per %.0f)\n",
      near_reps, near_total,
      near_reps ? static_cast<double>(near_total) / near_reps : 0.0);
  std::printf(
      "  far from query (>0.3): %zu reps for %zu objects (1 per %.0f)\n",
      far_reps, far_total,
      far_reps ? static_cast<double>(far_total) / far_reps : 0.0);
  std::printf("  -> relevant regions are represented in finer detail\n");
  return 0;
}
