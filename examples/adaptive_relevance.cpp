// §8 (future work) scenario: integrating relevance with DisC diversity.
//
// Simulates a query whose results carry relevance scores (distance to a
// query point) and demonstrates both §8 proposals through the DiscEngine
// façade:
//   1. Weighted DisC — valid DisC subsets biased toward relevant objects.
//   2. Multi-radius DisC — relevant objects get a smaller radius, so the
//      area near the query is represented in finer detail.

#include <cmath>
#include <cstdio>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "eval/table.h"

int main() {
  using namespace disc;

  EngineConfig config;
  config.dataset = DatasetSpec::Clustered(1500, 2, /*seed=*/99);
  auto engine_or = DiscEngine::Create(std::move(config));
  if (!engine_or.ok()) {
    std::fprintf(stderr, "engine creation failed: %s\n",
                 engine_or.status().ToString().c_str());
    return 1;
  }
  DiscEngine& engine = **engine_or;
  const Dataset& dataset = engine.dataset();

  // Relevance: decays with distance from an imaginary query point.
  const Point query{0.3, 0.6};
  std::vector<double> relevance(dataset.size());
  std::vector<double> weights(dataset.size());
  for (ObjectId i = 0; i < dataset.size(); ++i) {
    double d = engine.metric().Distance(dataset.point(i), query);
    relevance[i] = std::exp(-3.0 * d);
    weights[i] = 0.05 + relevance[i];
  }

  const double radius = 0.08;

  // --- 1. Weighted DisC ---------------------------------------------------
  WeightedRequest plain_request;
  plain_request.radius = radius;
  plain_request.weights.assign(dataset.size(), 1.0);
  plain_request.objective = WeightedObjective::kMaxWeight;
  plain_request.compute_quality = true;
  WeightedRequest max_weight_request = plain_request;
  max_weight_request.weights = weights;
  WeightedRequest balanced_request = max_weight_request;
  balanced_request.objective = WeightedObjective::kWeightTimesCoverage;

  auto plain = engine.WeightedDiversify(plain_request);
  auto max_weight = engine.WeightedDiversify(max_weight_request);
  auto balanced = engine.WeightedDiversify(balanced_request);
  if (!plain.ok() || !max_weight.ok() || !balanced.ok()) {
    std::fprintf(stderr, "weighted DisC failed\n");
    return 1;
  }
  TablePrinter table("Weighted DisC at r=" + FormatDouble(radius, 3));
  table.SetHeader(
      {"variant", "size", "total-relevance", "relevance/object", "valid"});
  auto add = [&](const char* name, const DiversifyResponse& response) {
    double total = 0.0;
    for (ObjectId id : response.solution) total += relevance[id];
    table.AddRow(
        {name, std::to_string(response.size()), FormatDouble(total, 5),
         FormatDouble(
             response.solution.empty() ? 0.0 : total / response.size(), 4),
         response.quality->verification.ok() ? "yes" : "NO"});
  };
  add("uniform weights", *plain);
  add("max-weight", *max_weight);
  add("weight x coverage", *balanced);
  table.Print();

  // --- 2. Multi-radius DisC -----------------------------------------------
  MultiRadiusRequest multi_request;
  multi_request.r_min = 0.04;
  multi_request.r_max = 0.16;
  multi_request.relevance = relevance;
  auto multi = engine.MultiRadiusDiversify(multi_request);
  if (!multi.ok()) {
    std::fprintf(stderr, "%s\n", multi.status().ToString().c_str());
    return 1;
  }

  // Representation density near vs far from the query.
  size_t near_reps = 0, far_reps = 0, near_total = 0, far_total = 0;
  for (ObjectId i = 0; i < dataset.size(); ++i) {
    bool near = engine.metric().Distance(dataset.point(i), query) < 0.3;
    (near ? near_total : far_total)++;
  }
  for (ObjectId s : multi->solution) {
    bool near = engine.metric().Distance(dataset.point(s), query) < 0.3;
    (near ? near_reps : far_reps)++;
  }
  std::printf("\nMulti-radius DisC: %zu representatives\n", multi->size());
  std::printf(
      "  near the query (<0.3): %zu reps for %zu objects (1 per %.0f)\n",
      near_reps, near_total,
      near_reps ? static_cast<double>(near_total) / near_reps : 0.0);
  std::printf(
      "  far from query (>0.3): %zu reps for %zu objects (1 per %.0f)\n",
      far_reps, far_total,
      far_reps ? static_cast<double>(far_total) / far_reps : 0.0);
  std::printf("  -> relevant regions are represented in finer detail\n");
  return 0;
}
