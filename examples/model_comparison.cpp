// Figure 6 scenario: qualitative comparison of diversification models.
//
// Runs DisC, r-C (coverage only), greedy MaxSum, greedy MaxMin, and
// k-medoids on the same clustered dataset (k is set to the DisC solution
// size, as in the paper), prints a quality scorecard, and writes one CSV per
// model so the five panels of Figure 6 can be re-plotted.
//
// Usage: model_comparison [output_dir]

#include <cstdio>
#include <string>

#include "baselines/kmedoids.h"
#include "baselines/maxmin.h"
#include "baselines/maxsum.h"
#include "core/disc_algorithms.h"
#include "data/generators.h"
#include "eval/quality.h"
#include "eval/table.h"
#include "metric/metric.h"
#include "mtree/mtree.h"

int main(int argc, char** argv) {
  using namespace disc;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  Dataset dataset = MakeClusteredDataset(2000, 2, /*seed=*/777);
  EuclideanMetric metric;
  const double radius = 0.07;

  MTree tree(dataset, metric);
  if (Status s = tree.Build(); !s.ok()) {
    std::fprintf(stderr, "M-tree build failed: %s\n", s.ToString().c_str());
    return 1;
  }

  DiscResult disc_result = GreedyDisc(&tree, radius, {});
  DiscResult rc_result = GreedyC(&tree, radius);
  const size_t k = disc_result.size();
  std::printf("DisC at r=%.2f selects k=%zu objects; comparing models at "
              "equal k\n\n",
              radius, k);

  auto maxsum = GreedyMaxSum(dataset, metric, k);
  auto maxmin = GreedyMaxMin(dataset, metric, k);
  auto medoids = KMedoids(dataset, metric, k);
  if (!maxsum.ok() || !maxmin.ok() || !medoids.ok()) {
    std::fprintf(stderr, "baseline failed\n");
    return 1;
  }

  TablePrinter table("Figure 6 — model comparison (Clustered, k=" +
                     std::to_string(k) + ")");
  table.SetHeader({"model", "size", "coverage@r", "fMin", "fSum",
                   "mean-rep-dist"});
  auto add = [&](const std::string& name, const std::vector<ObjectId>& set) {
    table.AddRow({name, std::to_string(set.size()),
                  FormatDouble(CoverageFraction(dataset, metric, radius, set),
                               4),
                  FormatDouble(FMin(dataset, metric, set), 4),
                  FormatDouble(FSum(dataset, metric, set), 5),
                  FormatDouble(MeanRepresentationDistance(dataset, metric, set),
                               4)});
  };
  add("r-DisC", disc_result.solution);
  add("MaxSum", *maxsum);
  add("MaxMin", *maxmin);
  add("k-medoids", medoids->medoids);
  add("r-C", rc_result.solution);
  table.Print();

  struct Panel {
    const char* file;
    const std::vector<ObjectId>* set;
  };
  const Panel panels[] = {
      {"fig6a_disc.csv", &disc_result.solution},
      {"fig6b_maxsum.csv", &*maxsum},
      {"fig6c_maxmin.csv", &*maxmin},
      {"fig6d_kmedoids.csv", &medoids->medoids},
      {"fig6e_rc.csv", &rc_result.solution},
  };
  for (const Panel& panel : panels) {
    std::string path = out_dir + "/" + panel.file;
    if (Status s = SavePointsCsv(path, dataset, panel.set); !s.ok()) {
      std::fprintf(stderr, "warning: %s\n", s.ToString().c_str());
    }
  }
  std::printf("\nwrote fig6{a..e}_*.csv to %s\n", out_dir.c_str());
  return 0;
}
