// disc_client — line-protocol driver for a running disc_serve daemon.
//
// Reads commands from stdin (one per line), sends each over the TCP
// connection, and prints the daemon's one-line JSON response — a lockstep
// REPL suitable both interactively and piped:
//
//   printf 'OPEN dataset=clustered n=1000\nDIVERSIFY r=0.05\nCLOSE\n' |
//     disc_client --port=4817
//
// Exits 0 when every response had "ok":true, 1 otherwise (so scripted
// transcripts double as checks; a BUSY rejection from the daemon's
// admission control is a not-ok response like any other), 2 on usage or
// connection errors. Errors and BUSY rejections are summarized on stderr
// so pipelines can tell "the data was odd" from "the daemon refused".
//
// Usage:
//   disc_client [--host=127.0.0.1] [--port=4817] [--http] [--timing]
//               [--help]
//
// --http sends the same commands over the event-loop server's HTTP
// transport instead: each input line "VERB args" becomes a POST /verb
// with the args as the body, over one keep-alive connection (= one
// session, exactly like the line protocol). stdout stays the protocol's
// JSON lines — the HTTP response body is the line protocol's response —
// so transcripts compare byte-for-byte across transports.
//
// --timing prints per-request wall time to stderr ("12.345 ms  <cmd>"),
// keeping stdout byte-clean for transcript comparison.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "server/net.h"
#include "util/flags.h"

namespace {

using namespace disc;

constexpr const char* kUsage =
    "usage: disc_client [--host=<ipv4>] [--port=<port>] [--http] "
    "[--timing] [--help]\n"
    "reads protocol lines from stdin; see disc_serve --help for the "
    "command vocabulary\n"
    "--http: speak the HTTP transport (POST /verb per command) instead "
    "of the line protocol; stdout is unchanged\n"
    "--timing: per-request wall time on stderr (stdout stays byte-clean)\n";

// "VERB args" -> {"/verb", "args"}: the HTTP transport's request mapping
// (docs/PROTOCOL.md). The verb is lowercased into the path; the rest of
// the line rides in the body untouched.
std::pair<std::string, std::string> SplitHttpCommand(const std::string& line) {
  const size_t start = line.find_first_not_of(" \t");
  const size_t end = line.find_first_of(" \t", start);
  std::string verb = line.substr(
      start, end == std::string::npos ? std::string::npos : end - start);
  for (char& c : verb) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  std::string args;
  if (end != std::string::npos) {
    const size_t body = line.find_first_not_of(" \t", end);
    if (body != std::string::npos) args = line.substr(body);
  }
  return {"/" + verb, args};
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or =
      ParseFlagArgs(argc, argv, {"host", "port", "http", "timing", "help"});
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().message().c_str(),
                 kUsage);
    return 2;
  }
  const auto& flags = *flags_or;
  if (flags.count("help")) {
    std::printf("%s", kUsage);
    return 0;
  }
  const std::string host = FlagOr(flags, "host", "127.0.0.1");
  const bool timing = flags.count("timing") > 0;
  const bool http = flags.count("http") > 0;
  auto port = FlagInt(flags, "port", 4817);
  if (!port.ok()) {
    std::fprintf(stderr, "%s\n%s", port.status().message().c_str(), kUsage);
    return 2;
  }

  std::optional<LineClient> line_client;
  std::optional<HttpClient> http_client;
  if (http) {
    auto client_or = HttpClient::Connect(host, *port);
    if (!client_or.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   client_or.status().ToString().c_str());
      return 2;
    }
    http_client.emplace(std::move(client_or).value());
  } else {
    auto client_or = LineClient::Connect(host, *port);
    if (!client_or.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   client_or.status().ToString().c_str());
      return 2;
    }
    line_client.emplace(std::move(client_or).value());
  }

  // Either transport yields the protocol's one-line JSON response: the
  // HTTP body IS that line (plus its framing newline, stripped here).
  auto roundtrip = [&](const std::string& line) -> Result<std::string> {
    if (!http) return line_client->Roundtrip(line);
    auto [path, args] = SplitHttpCommand(line);
    DISC_ASSIGN_OR_RETURN(HttpResponse response,
                          http_client->Post(path, args));
    std::string body = std::move(response.body);
    if (!body.empty() && body.back() == '\n') body.pop_back();
    return body;
  };

  bool all_ok = true;
  size_t errors = 0;
  size_t busy = 0;
  for (std::string line; std::getline(std::cin, line);) {
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    const auto started = std::chrono::steady_clock::now();
    auto response = roundtrip(line);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - started)
            .count();
    if (!response.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   response.status().ToString().c_str());
      return 2;
    }
    if (timing) std::fprintf(stderr, "%.3f ms  %s\n", wall_ms, line.c_str());
    std::printf("%s\n", response->c_str());
    if (response->rfind("{\"ok\":true", 0) != 0) {
      all_ok = false;
      ++errors;
      // The protocol serializes the status code as "code":"Busy" for
      // admission-control rejections.
      if (response->find("\"code\":\"Busy\"") != std::string::npos) ++busy;
    }
  }
  if (!all_ok) {
    std::fprintf(stderr, "disc_client: %zu not-ok response%s (%zu busy)\n",
                 errors, errors == 1 ? "" : "s", busy);
  }
  return all_ok ? 0 : 1;
}
