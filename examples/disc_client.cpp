// disc_client — line-protocol driver for a running disc_serve daemon.
//
// Reads commands from stdin (one per line), sends each over the TCP
// connection, and prints the daemon's one-line JSON response — a lockstep
// REPL suitable both interactively and piped:
//
//   printf 'OPEN dataset=clustered n=1000\nDIVERSIFY r=0.05\nCLOSE\n' |
//     disc_client --port=4817
//
// Exits 0 when every response had "ok":true, 1 otherwise (so scripted
// transcripts double as checks), 2 on usage or connection errors.
//
// Usage:
//   disc_client [--host=127.0.0.1] [--port=4817] [--help]

#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <utility>

#include "server/net.h"
#include "util/flags.h"

namespace {

using namespace disc;

constexpr const char* kUsage =
    "usage: disc_client [--host=<ipv4>] [--port=<port>] [--help]\n"
    "reads protocol lines from stdin; see disc_serve --help for the "
    "command vocabulary\n";

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = ParseFlagArgs(argc, argv, {"host", "port", "help"});
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().message().c_str(),
                 kUsage);
    return 2;
  }
  const auto& flags = *flags_or;
  if (flags.count("help")) {
    std::printf("%s", kUsage);
    return 0;
  }
  const std::string host = FlagOr(flags, "host", "127.0.0.1");
  auto port = FlagInt(flags, "port", 4817);
  if (!port.ok()) {
    std::fprintf(stderr, "%s\n%s", port.status().message().c_str(), kUsage);
    return 2;
  }

  auto client_or = LineClient::Connect(host, *port);
  if (!client_or.ok()) {
    std::fprintf(stderr, "error: %s\n", client_or.status().ToString().c_str());
    return 2;
  }
  LineClient client = std::move(client_or).value();

  bool all_ok = true;
  for (std::string line; std::getline(std::cin, line);) {
    if (line.find_first_not_of(" \t") == std::string::npos) continue;
    auto response = client.Roundtrip(line);
    if (!response.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   response.status().ToString().c_str());
      return 2;
    }
    std::printf("%s\n", response->c_str());
    if (response->rfind("{\"ok\":true", 0) != 0) all_ok = false;
  }
  return all_ok ? 0 : 1;
}
