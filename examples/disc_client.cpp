// disc_client — line-protocol driver for a running disc_serve daemon.
//
// Reads commands from stdin (one per line), sends each over the TCP
// connection, and prints the daemon's one-line JSON response — a lockstep
// REPL suitable both interactively and piped:
//
//   printf 'OPEN dataset=clustered n=1000\nDIVERSIFY r=0.05\nCLOSE\n' |
//     disc_client --port=4817
//
// Exits 0 when every response had "ok":true, 1 otherwise (so scripted
// transcripts double as checks; a BUSY rejection from the daemon's
// admission control is a not-ok response like any other), 2 on usage or
// connection errors. Errors and BUSY rejections are summarized on stderr
// so pipelines can tell "the data was odd" from "the daemon refused".
//
// Usage:
//   disc_client [--host=127.0.0.1] [--port=4817] [--http] [--timing]
//               [--help]
//
// --http sends the same commands over the event-loop server's HTTP
// transport instead: each input line "VERB args" becomes a POST /verb
// with the args as the body, over one keep-alive connection (= one
// session, exactly like the line protocol). stdout stays the protocol's
// JSON lines — the HTTP response body is the line protocol's response —
// so transcripts compare byte-for-byte across transports.
//
// --batch collects every stdin command first and ships them as BATCH
// units (the line protocol's "BATCH n=<k>" envelope, or POST /batch with
// a JSON array body under --http) of at most 64 commands each, printing
// the response lines in command order. stdout is byte-identical to
// running the same commands without --batch — that equivalence is what
// the daemon smoke test pins.
//
// --timing prints per-request wall time to stderr ("12.345 ms  <cmd>"),
// keeping stdout byte-clean for transcript comparison.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "server/net.h"
#include "server/protocol.h"
#include "util/flags.h"

namespace {

using namespace disc;

constexpr const char* kUsage =
    "usage: disc_client [--host=<ipv4>] [--port=<port>] [--http] "
    "[--batch] [--timing] [--help]\n"
    "reads protocol lines from stdin; see disc_serve --help for the "
    "command vocabulary\n"
    "--http: speak the HTTP transport (POST /verb per command) instead "
    "of the line protocol; stdout is unchanged\n"
    "--batch: ship the commands as BATCH units (<=64 commands each; "
    "POST /batch under --http); stdout is unchanged\n"
    "--timing: per-request wall time on stderr (stdout stays byte-clean)\n";

// "VERB args" -> {"/verb", "args"}: the HTTP transport's request mapping
// (docs/PROTOCOL.md). The verb is lowercased into the path; the rest of
// the line rides in the body untouched.
std::pair<std::string, std::string> SplitHttpCommand(const std::string& line) {
  const size_t start = line.find_first_not_of(" \t");
  const size_t end = line.find_first_of(" \t", start);
  std::string verb = line.substr(
      start, end == std::string::npos ? std::string::npos : end - start);
  for (char& c : verb) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  std::string args;
  if (end != std::string::npos) {
    const size_t body = line.find_first_not_of(" \t", end);
    if (body != std::string::npos) args = line.substr(body);
  }
  return {"/" + verb, args};
}

// Minimal JSON string quoting for the POST /batch array body (command
// lines are ASCII protocol text; anything else is escaped numerically).
std::string JsonQuote(const std::string& text) {
  std::string out = "\"";
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags_or = ParseFlagArgs(
      argc, argv, {"host", "port", "http", "batch", "timing", "help"});
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().message().c_str(),
                 kUsage);
    return 2;
  }
  const auto& flags = *flags_or;
  if (flags.count("help")) {
    std::printf("%s", kUsage);
    return 0;
  }
  const std::string host = FlagOr(flags, "host", "127.0.0.1");
  const bool timing = flags.count("timing") > 0;
  const bool http = flags.count("http") > 0;
  const bool batch = flags.count("batch") > 0;
  auto port = FlagInt(flags, "port", 4817);
  if (!port.ok()) {
    std::fprintf(stderr, "%s\n%s", port.status().message().c_str(), kUsage);
    return 2;
  }

  std::optional<LineClient> line_client;
  std::optional<HttpClient> http_client;
  if (http) {
    auto client_or = HttpClient::Connect(host, *port);
    if (!client_or.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   client_or.status().ToString().c_str());
      return 2;
    }
    http_client.emplace(std::move(client_or).value());
  } else {
    auto client_or = LineClient::Connect(host, *port);
    if (!client_or.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   client_or.status().ToString().c_str());
      return 2;
    }
    line_client.emplace(std::move(client_or).value());
  }

  // Either transport yields the protocol's one-line JSON response: the
  // HTTP body IS that line (plus its framing newline, stripped here).
  auto roundtrip = [&](const std::string& line) -> Result<std::string> {
    if (!http) return line_client->Roundtrip(line);
    auto [path, args] = SplitHttpCommand(line);
    DISC_ASSIGN_OR_RETURN(HttpResponse response,
                          http_client->Post(path, args));
    std::string body = std::move(response.body);
    if (!body.empty() && body.back() == '\n') body.pop_back();
    return body;
  };

  bool all_ok = true;
  size_t errors = 0;
  size_t busy = 0;
  // Prints a response line and folds it into the exit-code accounting.
  auto emit = [&](const std::string& response) {
    std::printf("%s\n", response.c_str());
    if (response.rfind("{\"ok\":true", 0) != 0) {
      all_ok = false;
      ++errors;
      // The protocol serializes the status code as "code":"Busy" for
      // admission-control rejections.
      if (response.find("\"code\":\"Busy\"") != std::string::npos) ++busy;
    }
  };

  // Ships one BATCH unit and returns its response lines. Envelope-level
  // failures (the only one a well-formed client-built envelope can draw
  // is a Busy admission refusal) come back as a single line under cmd
  // "BATCH"; the line transport detects that from the first response to
  // know no further lines are owed.
  auto run_batch = [&](const std::vector<std::string>& chunk)
      -> Result<std::vector<std::string>> {
    std::vector<std::string> responses;
    responses.reserve(chunk.size());
    if (http) {
      std::string body = "[";
      for (size_t i = 0; i < chunk.size(); ++i) {
        if (i > 0) body += ",";
        body += JsonQuote(chunk[i]);
      }
      body += "]";
      DISC_ASSIGN_OR_RETURN(HttpResponse response,
                            http_client->Post("/batch", body));
      // The body is the response lines (one on envelope failure).
      size_t start = 0;
      while (start < response.body.size()) {
        size_t end = response.body.find('\n', start);
        if (end == std::string::npos) end = response.body.size();
        responses.push_back(response.body.substr(start, end - start));
        start = end + 1;
      }
      return responses;
    }
    DISC_RETURN_NOT_OK(
        line_client->SendLine("BATCH n=" + std::to_string(chunk.size())));
    for (const std::string& command : chunk) {
      DISC_RETURN_NOT_OK(line_client->SendLine(command));
    }
    DISC_ASSIGN_OR_RETURN(std::string first, line_client->RecvLine());
    const bool envelope_refused =
        first.rfind("{\"ok\":false", 0) == 0 &&
        first.find("\"cmd\":\"BATCH\"") != std::string::npos &&
        first.find("\"code\":\"Busy\"") != std::string::npos;
    responses.push_back(std::move(first));
    if (!envelope_refused) {
      for (size_t i = 1; i < chunk.size(); ++i) {
        DISC_ASSIGN_OR_RETURN(std::string next, line_client->RecvLine());
        responses.push_back(std::move(next));
      }
    }
    return responses;
  };

  if (batch) {
    std::vector<std::string> commands;
    for (std::string line; std::getline(std::cin, line);) {
      // Same blank-line tolerance as the lockstep path, so the two modes
      // see identical command streams (and print identical responses).
      if (line.find_first_not_of(" \t") == std::string::npos) continue;
      commands.push_back(std::move(line));
    }
    for (size_t offset = 0; offset < commands.size();
         offset += kMaxBatchCommands) {
      const std::vector<std::string> chunk(
          commands.begin() + offset,
          commands.begin() +
              std::min(commands.size(), offset + kMaxBatchCommands));
      const auto started = std::chrono::steady_clock::now();
      auto responses = run_batch(chunk);
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - started)
              .count();
      if (!responses.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     responses.status().ToString().c_str());
        return 2;
      }
      if (timing) {
        std::fprintf(stderr, "%.3f ms  BATCH n=%zu\n", wall_ms,
                     chunk.size());
      }
      for (const std::string& response : *responses) emit(response);
    }
  } else {
    for (std::string line; std::getline(std::cin, line);) {
      if (line.find_first_not_of(" \t") == std::string::npos) continue;
      const auto started = std::chrono::steady_clock::now();
      auto response = roundtrip(line);
      const double wall_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - started)
              .count();
      if (!response.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     response.status().ToString().c_str());
        return 2;
      }
      if (timing) {
        std::fprintf(stderr, "%.3f ms  %s\n", wall_ms, line.c_str());
      }
      emit(*response);
    }
  }
  if (!all_ok) {
    std::fprintf(stderr, "disc_client: %zu not-ok response%s (%zu busy)\n",
                 errors, errors == 1 ? "" : "s", busy);
  }
  return all_ok ? 0 : 1;
}
