// disc_cli — command-line driver for the library.
//
// A thin translator from flags to DiscEngine requests: every flag maps onto
// an EngineConfig field or a DiversifyRequest/ZoomRequest field, and all
// index and algorithm work happens inside the engine.
//
// Usage:
//   disc_cli [--dataset=uniform|clustered|cities|cameras|csv:<path>]
//            [--n=10000] [--dim=2] [--seed=42]
//            [--metric=euclidean|manhattan|chebyshev|hamming]
//            [--algorithm=basic|greedy|greedy-white|lazy-grey|lazy-white|
//                         greedy-c|fast-c]
//            [--build=insert|bulk] [--threads=0] [--radius=0.05]
//            [--neighbor-backend=exact|grid|lsh|sharded|lsh-sharded]
//            [--zoom-to=<r'>] [--out=<points.csv>] [--help]
//
// Examples:
//   disc_cli --dataset=cities --radius=0.01 --zoom-to=0.005
//   disc_cli --dataset=csv:points.csv --metric=manhattan --radius=0.1

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "data/dataset.h"
#include "engine/engine.h"
#include "eval/quality.h"
#include "eval/table.h"
#include "util/flags.h"

namespace {

using namespace disc;

constexpr const char* kUsage =
    "usage: disc_cli [--dataset=uniform|clustered|cities|cameras|csv:<path>]\n"
    "                [--n=<count>] [--dim=<dims>] [--seed=<seed>]\n"
    "                [--metric=euclidean|manhattan|chebyshev|hamming]\n"
    "                [--algorithm=basic|greedy|greedy-white|lazy-grey|"
    "lazy-white|greedy-c|fast-c]\n"
    "                [--build=insert|bulk] [--threads=<count>]\n"
    "                [--neighbor-backend=exact|grid|lsh|sharded|"
    "lsh-sharded]\n"
    "                [--radius=<r>] [--zoom-to=<r'>] [--out=<points.csv>]\n"
    "                [--help]\n"
    "\n"
    "--threads: worker threads for the engine's parallel passes (0 = one\n"
    "           per hardware thread, 1 = serial; results are byte-identical\n"
    "           either way).\n"
    "--neighbor-backend: the neighbor engine computing N_r(p). 'exact'\n"
    "           (default) is the M-tree session engine; the others run in\n"
    "           graph mode (algorithms basic/greedy/greedy-c only, no\n"
    "           --zoom-to) — 'lsh' and 'lsh-sharded' are approximate and\n"
    "           open million-point workloads.\n";

[[noreturn]] void Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::exit(1);
}

// Unwraps a parsed flag value or exits with the parse error.
template <typename T>
T FlagValueOrDie(const Result<T>& result) {
  if (!result.ok()) Fail(result.status().ToString());
  return *result;
}

}  // namespace

int main(int argc, char** argv) {
  // The full flag vocabulary; anything else is rejected with the usage text.
  auto flags_or = ParseFlagArgs(
      argc, argv,
      {"dataset", "n", "dim", "seed", "metric", "algorithm", "build",
       "threads", "neighbor-backend", "radius", "zoom-to", "out", "help"});
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n%s", flags_or.status().message().c_str(),
                 kUsage);
    return 2;
  }
  auto flags = std::move(flags_or).value();
  if (flags.count("help")) {
    std::printf("%s", kUsage);
    return 0;
  }

  // ---- flags -> EngineConfig ----
  const std::string which = FlagOr(flags, "dataset", "clustered");
  const size_t n = FlagValueOrDie(FlagUint(flags, "n", 10000));
  const size_t dim = FlagValueOrDie(FlagUint(flags, "dim", 2));
  const uint64_t seed = FlagValueOrDie(FlagUint(flags, "seed", 42));

  EngineConfig config;
  auto spec = ParseDatasetSpec(which, n, dim, seed);
  if (!spec.ok()) Fail(spec.status().ToString());
  config.dataset = std::move(spec).value();
  const DatasetSpec::Source source = config.dataset.source;

  auto metric_kind = ParseMetricKind(
      FlagOr(flags, "metric", MetricKindToString(DefaultMetricFor(source))));
  if (!metric_kind.ok()) Fail(metric_kind.status().ToString());
  config.metric = *metric_kind;

  const std::string build = FlagOr(flags, "build", "insert");
  if (build == "bulk") {
    config.tree.build.strategy = BuildStrategy::kBulkLoad;
  } else if (build != "insert") {
    Fail("unknown build strategy '" + build + "' (want insert or bulk)");
  }
  config.threads = FlagValueOrDie(FlagUint(flags, "threads", 0));

  if (flags.count("neighbor-backend")) {
    auto backend = ParseNeighborBackendKind(flags["neighbor-backend"]);
    if (!backend.ok()) {
      // An unknown backend is a usage error (exit 2 + usage text), the
      // same contract as an unknown flag — never a silent default.
      std::fprintf(stderr, "%s\n%s", backend.status().message().c_str(),
                   kUsage);
      return 2;
    }
    config.neighbor.kind = *backend;
  }

  // ---- engine ----
  auto engine_or = DiscEngine::Create(std::move(config));
  if (!engine_or.ok()) Fail(engine_or.status().ToString());
  DiscEngine& engine = **engine_or;

  // ---- flags -> DiversifyRequest ----
  DiversifyRequest request;
  auto algorithm =
      ParseAlgorithm(FlagOr(flags, "algorithm", "greedy"));
  if (!algorithm.ok()) Fail(algorithm.status().ToString());
  request.algorithm = *algorithm;
  request.radius =
      FlagValueOrDie(FlagDouble(flags, "radius", DefaultRadiusFor(source)));
  if (request.radius < 0) Fail("radius must be non-negative");
  request.compute_quality = true;

  auto response_or = engine.Diversify(request);
  if (!response_or.ok()) Fail(response_or.status().ToString());
  DiversifyResponse response = std::move(response_or).value();

  // ---- report ----
  const Dataset& dataset = engine.dataset();
  TablePrinter table("DisC diversification result");
  table.SetHeader({"property", "value"});
  table.AddRow({"dataset", which + " (" + std::to_string(dataset.size()) +
                               " objects, dim " +
                               std::to_string(dataset.dim()) + ")"});
  table.AddRow({"metric", engine.metric().name()});
  table.AddRow({"index build", build});
  table.AddRow({"algorithm", AlgorithmToString(request.algorithm)});
  table.AddRow({"radius", FormatDouble(request.radius, 6)});
  table.AddRow({"solution size", std::to_string(response.size())});
  table.AddRow(
      {"node accesses", std::to_string(response.stats.node_accesses)});
  table.AddRow(
      {"range queries", std::to_string(response.stats.range_queries)});
  table.AddRow({"wall ms", FormatDouble(response.wall_ms, 4)});
  const QualityMetrics& quality = *response.quality;
  table.AddRow({"coverage@r", FormatDouble(quality.coverage, 4)});
  table.AddRow({"fMin", FormatDouble(quality.f_min, 5)});
  Status valid = quality.verification;
  table.AddRow({"verified", valid.ok() ? "OK" : valid.ToString()});
  table.Print();

  // ---- optional zoom ----
  const double zoom_to =
      FlagValueOrDie(FlagDouble(flags, "zoom-to", request.radius));
  if (flags.count("zoom-to") && zoom_to == request.radius) {
    std::printf("zoom-to equals the current radius; nothing to adapt\n");
  } else if (flags.count("zoom-to")) {
    ZoomRequest zoom;
    zoom.radius = zoom_to;
    zoom.compute_quality = true;
    auto zoomed_or = engine.Zoom(zoom);
    if (!zoomed_or.ok()) Fail(zoomed_or.status().ToString());
    DiversifyResponse zoomed = std::move(zoomed_or).value();
    double jd = JaccardDistance(response.solution, zoomed.solution);
    TablePrinter zoom_table("After zooming to r' = " +
                            FormatDouble(zoom.radius, 6));
    zoom_table.SetHeader({"property", "value"});
    zoom_table.AddRow({"solution size", std::to_string(zoomed.size())});
    zoom_table.AddRow(
        {"node accesses", std::to_string(zoomed.stats.node_accesses)});
    zoom_table.AddRow({"jaccard distance to previous", FormatDouble(jd, 4)});
    Status zoom_valid = zoomed.quality->verification;
    zoom_table.AddRow(
        {"verified", zoom_valid.ok() ? "OK" : zoom_valid.ToString()});
    zoom_table.Print();
    response = std::move(zoomed);
  }

  // ---- optional CSV of points + selection markers ----
  if (flags.count("out")) {
    Status s = SavePointsCsv(flags["out"], dataset, &response.solution);
    if (!s.ok()) Fail(s.ToString());
    std::printf("wrote %s (x0..x%zu, selected)\n", flags["out"].c_str(),
                dataset.dim() - 1);
  }
  return valid.ok() ? 0 : 1;
}
