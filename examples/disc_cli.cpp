// disc_cli — command-line driver for the library.
//
// Diversifies a built-in or user-supplied dataset and reports the solution
// with quality metrics and index cost, optionally zooming to a second
// radius and writing plottable CSVs.
//
// Usage:
//   disc_cli [--dataset=uniform|clustered|cities|cameras|csv:<path>]
//            [--n=10000] [--dim=2] [--seed=42]
//            [--metric=euclidean|manhattan|chebyshev|hamming]
//            [--algorithm=basic|greedy|lazy-grey|lazy-white|greedy-c|fast-c]
//            [--build=insert|bulk] [--radius=0.05] [--zoom-to=<r'>]
//            [--out=<points.csv>]
//
// Examples:
//   disc_cli --dataset=cities --radius=0.01 --zoom-to=0.005
//   disc_cli --dataset=csv:points.csv --metric=manhattan --radius=0.1

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "core/disc_algorithms.h"
#include "core/zoom.h"
#include "data/cameras.h"
#include "data/cities.h"
#include "data/generators.h"
#include "eval/quality.h"
#include "eval/table.h"
#include "graph/properties.h"
#include "metric/metric.h"
#include "mtree/mtree.h"

namespace {

using namespace disc;

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s\n", arg.c_str());
      std::exit(2);
    }
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg.substr(2)] = "true";
    } else {
      flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

std::string FlagOr(const std::map<std::string, std::string>& flags,
                   const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

[[noreturn]] void Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = ParseFlags(argc, argv);

  // ---- dataset ----
  const std::string which = FlagOr(flags, "dataset", "clustered");
  const size_t n =
      std::strtoull(FlagOr(flags, "n", "10000").c_str(), nullptr, 10);
  const size_t dim =
      std::strtoull(FlagOr(flags, "dim", "2").c_str(), nullptr, 10);
  const uint64_t seed =
      std::strtoull(FlagOr(flags, "seed", "42").c_str(), nullptr, 10);
  std::string default_metric = "euclidean";
  std::string default_radius = "0.05";

  Dataset dataset;
  if (which == "uniform") {
    dataset = MakeUniformDataset(n, dim, seed);
  } else if (which == "clustered") {
    dataset = MakeClusteredDataset(n, dim, seed);
  } else if (which == "cities") {
    dataset = MakeCitiesDataset();
    default_radius = "0.01";
  } else if (which == "cameras") {
    dataset = MakeCamerasDataset();
    default_metric = "hamming";
    default_radius = "3";
  } else if (which.rfind("csv:", 0) == 0) {
    auto loaded = LoadPointsCsv(which.substr(4));
    if (!loaded.ok()) Fail(loaded.status().ToString());
    dataset = std::move(loaded).value();
  } else {
    Fail("unknown dataset '" + which + "'");
  }
  if (dataset.empty()) Fail("dataset is empty");

  // ---- metric & radius ----
  auto metric_kind = ParseMetricKind(FlagOr(flags, "metric", default_metric));
  if (!metric_kind.ok()) Fail(metric_kind.status().ToString());
  auto metric = MakeMetric(*metric_kind);
  const double radius =
      std::strtod(FlagOr(flags, "radius", default_radius).c_str(), nullptr);
  if (radius < 0) Fail("radius must be non-negative");

  // ---- index ----
  MTreeOptions tree_options;
  const std::string build = FlagOr(flags, "build", "insert");
  if (build == "bulk") {
    tree_options.build.strategy = BuildStrategy::kBulkLoad;
  } else if (build != "insert") {
    Fail("unknown build strategy '" + build + "' (want insert or bulk)");
  }
  MTree tree(dataset, *metric, tree_options);
  if (Status s = tree.Build(); !s.ok()) Fail(s.ToString());

  // ---- algorithm ----
  const std::string algo = FlagOr(flags, "algorithm", "greedy");
  DiscResult result;
  if (algo == "basic") {
    result = BasicDisc(&tree, radius, true);
  } else if (algo == "greedy" || algo == "lazy-grey" || algo == "lazy-white") {
    GreedyDiscOptions options;
    options.variant = algo == "greedy"      ? GreedyVariant::kGrey
                      : algo == "lazy-grey" ? GreedyVariant::kLazyGrey
                                            : GreedyVariant::kLazyWhite;
    result = GreedyDisc(&tree, radius, options);
  } else if (algo == "greedy-c") {
    result = GreedyC(&tree, radius);
  } else if (algo == "fast-c") {
    result = FastC(&tree, radius);
  } else {
    Fail("unknown algorithm '" + algo + "'");
  }

  // ---- report ----
  TablePrinter table("DisC diversification result");
  table.SetHeader({"property", "value"});
  table.AddRow({"dataset", which + " (" + std::to_string(dataset.size()) +
                               " objects, dim " +
                               std::to_string(dataset.dim()) + ")"});
  table.AddRow({"metric", metric->name()});
  table.AddRow({"index build", build});
  table.AddRow({"algorithm", algo});
  table.AddRow({"radius", FormatDouble(radius, 6)});
  table.AddRow({"solution size", std::to_string(result.size())});
  table.AddRow({"node accesses", std::to_string(result.stats.node_accesses)});
  table.AddRow({"range queries", std::to_string(result.stats.range_queries)});
  table.AddRow({"wall ms", FormatDouble(result.wall_ms, 4)});
  table.AddRow(
      {"coverage@r", FormatDouble(CoverageFraction(dataset, *metric, radius,
                                                   result.solution),
                                  4)});
  table.AddRow(
      {"fMin", FormatDouble(FMin(dataset, *metric, result.solution), 5)});
  Status valid = algo == "greedy-c" || algo == "fast-c"
                     ? VerifyCovering(dataset, *metric, radius, result.solution)
                     : VerifyDisCDiverse(dataset, *metric, radius,
                                         result.solution);
  table.AddRow({"verified", valid.ok() ? "OK" : valid.ToString()});
  table.Print();

  // ---- optional zoom ----
  if (flags.count("zoom-to")) {
    double r_new = std::strtod(flags["zoom-to"].c_str(), nullptr);
    if (algo == "greedy-c" || algo == "fast-c") {
      Fail("--zoom-to requires a DisC algorithm (basic/greedy/...)");
    }
    tree.RecomputeClosestBlackDistances(radius);
    DiscResult zoomed =
        r_new < radius ? ZoomIn(&tree, r_new, true)
                       : ZoomOut(&tree, r_new, ZoomOutVariant::kGreedyMostRed);
    double jd = JaccardDistance(result.solution, zoomed.solution);
    TablePrinter zoom_table("After zooming to r' = " + FormatDouble(r_new, 6));
    zoom_table.SetHeader({"property", "value"});
    zoom_table.AddRow({"solution size", std::to_string(zoomed.size())});
    zoom_table.AddRow(
        {"node accesses", std::to_string(zoomed.stats.node_accesses)});
    zoom_table.AddRow({"jaccard distance to previous", FormatDouble(jd, 4)});
    Status zoom_valid =
        VerifyDisCDiverse(dataset, *metric, r_new, zoomed.solution);
    zoom_table.AddRow(
        {"verified", zoom_valid.ok() ? "OK" : zoom_valid.ToString()});
    zoom_table.Print();
    result = std::move(zoomed);
  }

  // ---- optional CSV of points + selection markers ----
  if (flags.count("out")) {
    Status s = SavePointsCsv(flags["out"], dataset, &result.solution);
    if (!s.ok()) Fail(s.ToString());
    std::printf("wrote %s (x0..x%zu, selected)\n", flags["out"].c_str(),
                dataset.dim() - 1);
  }
  return valid.ok() ? 0 : 1;
}
